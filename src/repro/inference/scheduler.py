"""Continuous-batching serving scheduler (plan-time, deterministic).

The scheduler runs the whole serving episode on a logical clock and
emits a :class:`ServingTape`: per-iteration admission, decode, KV
alloc/free, and swap decisions.  The tape is then lowered onto the
discrete-event substrate (`repro.inference.lowering`), where the
interpreters replay exactly these decisions with real link timings —
the same plan-then-simulate split the training planner uses.

Policy (vLLM-flavoured, simplified to stay deterministic):

* requests admit in arrival order at iteration boundaries, capped by
  ``max_batch`` and by KV headroom on *every* stage;
* every running request decodes one token per iteration (a prefill
  produces the request's first token);
* when a decode needs a KV block that does not fit, the
  latest-admitted running request is victimized — suspended via swap
  (``kv_swap="d2d"``/``"pcie"``) or preempted outright and re-prefilled
  later (``kv_swap="none"``);
* suspended requests resume FIFO as soon as their blocks fit again.

Crucially the victim choice and iteration structure never look at
*which* swap transport is configured, so D2D and PCIe runs of the
same workload spill byte-identical volumes — the controlled
comparison behind the decode-stall crossover claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.inference.costing import ServingCost
from repro.inference.kvcache import KVBlockManager
from repro.inference.workload import InferenceConfig, Request
from repro.sim.memory import DeviceMemory

_MAX_PASSES = 1_000_000
_PREFIX_KEY = "system-prompt"


@dataclass
class SwapDecision:
    """One stage's share of one suspension: bytes leaving a device."""

    rid: int
    stage: int
    device: int
    size: int
    out_iteration: int
    in_iteration: Optional[int] = None


@dataclass(frozen=True)
class IterationRecord:
    """Everything one continuous-batching iteration does."""

    index: int
    gate: Optional[float]               # max arrival among admissions
    prefills: Tuple[Tuple[int, int], ...]   # (rid, chargeable prompt tokens)
    decodes: Tuple[Tuple[int, int], ...]    # (rid, KV context read)
    stage_durations: Tuple[float, ...]
    kv_alloc: Tuple[int, ...]           # per stage: fresh bytes at compute start
    kv_free: Tuple[int, ...]            # per stage: bytes dropped at compute end
    boundary_tokens: int


@dataclass
class ServingTape:
    """The scheduler's full decision record for one serving episode."""

    requests: List[Request]
    iterations: List[IterationRecord] = field(default_factory=list)
    swaps: List[SwapDecision] = field(default_factory=list)
    completion: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    preemptions: int = 0
    prefix_cache_hits: int = 0
    prefix_saved_tokens: int = 0
    total_flops: float = 0.0
    total_output_tokens: int = 0

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def swapped_bytes(self) -> int:
        return sum(decision.size for decision in self.swaps)

    @property
    def swapped_requests(self) -> int:
        return len({decision.rid for decision in self.swaps})

    @property
    def swap_gated_iterations(self) -> Set[int]:
        """Iterations whose compute waits on a KV swap-in."""
        return {
            decision.in_iteration
            for decision in self.swaps
            if decision.in_iteration is not None
        }


@dataclass
class _Active:
    """Mutable per-request serving state."""

    request: Request
    order: int                  # admission sequence number (victim priority)
    context: int = 0            # tokens whose KV is (logically) resident
    generated: int = 0
    blocks_held: int = 0        # incl. shared prefix blocks
    prefix_blocks: int = 0
    prefill_iter: int = -1


def schedule_serving(
    requests: List[Request], cost: ServingCost, config: InferenceConfig
) -> ServingTape:
    """Run the continuous-batching policy; returns the decision tape."""
    stages = range(cost.n_stages)
    managers = [
        KVBlockManager(
            DeviceMemory(name=f"kvplan{s}", capacity=cost.kv_pool_bytes(s)),
            cost.block_bytes(s),
        )
        for s in stages
    ]
    validate_pool(cost, requests)
    tape = ServingTape(requests=list(requests))
    waiting: List[Request] = list(requests)
    running: Dict[int, _Active] = {}
    parked: Dict[int, _Active] = {}
    parked_private: Dict[int, int] = {}
    open_swaps: Dict[int, List[int]] = {}   # rid -> indices into tape.swaps
    suspended: List[int] = []
    clock = 0.0
    next_order = 0
    idle_passes = 0

    def fresh_blocks_needed(request: Request) -> Tuple[int, int, int]:
        """(fresh, prefix_blocks, cached_tokens) for admitting ``request``."""
        total = cost.blocks_for_tokens(request.prompt_tokens)
        if request.shared_prefix and config.shared_prefix_tokens >= config.block_tokens:
            prefix_blocks = min(
                config.shared_prefix_tokens // config.block_tokens, total
            )
            if managers[0].has_prefix(_PREFIX_KEY):
                cached = prefix_blocks * config.block_tokens
                return total - prefix_blocks, prefix_blocks, cached
            return total, prefix_blocks, 0
        return total, 0, 0

    for _guard in range(_MAX_PASSES):
        if not (waiting or running or suspended):
            break
        iteration = len(tape.iterations)
        if not running and not suspended and waiting:
            clock = max(clock, waiting[0].arrival)

        kv_alloc = [0] * cost.n_stages
        kv_free = [0] * cost.n_stages
        prefills: List[Tuple[int, int]] = []
        decodes: List[Tuple[int, int]] = []
        gate: Optional[float] = None
        resumed: Set[int] = set()
        suspended_now = False

        def suspend(victim: int) -> None:
            nonlocal suspended_now
            suspended_now = True
            state = running.pop(victim)
            if config.kv_swap == "none":
                # Recompute preemption: drop everything, re-prefill later.
                for s in stages:
                    kv_free[s] += managers[s].free_request(victim, clock)
                tape.preemptions += 1
                waiting.insert(0, state.request)
                return
            decisions: List[int] = []
            for s in stages:
                freed = managers[s].evict_private(victim, clock)
                tape.swaps.append(
                    SwapDecision(rid=victim, stage=s, device=cost.stage_device(s),
                                 size=freed, out_iteration=iteration)
                )
                decisions.append(len(tape.swaps) - 1)
            parked_private[victim] = state.blocks_held - state.prefix_blocks
            state.blocks_held = state.prefix_blocks
            parked[victim] = state
            open_swaps[victim] = decisions
            suspended.append(victim)

        # 1. Resume suspended requests, strictly FIFO.
        while suspended:
            rid = suspended[0]
            blocks = parked_private[rid]
            if len(running) >= config.max_batch or not all(
                managers[s].can_allocate(blocks) for s in stages
            ):
                break
            suspended.pop(0)
            state = parked.pop(rid)
            for s in stages:
                # The device-side bytes come back on the swap-in
                # instructions, not on this iteration's compute.
                managers[s].restore_private(rid, blocks, clock)
            for index in open_swaps.pop(rid):
                tape.swaps[index].in_iteration = iteration
            state.blocks_held += blocks
            parked_private.pop(rid)
            running[rid] = state
            resumed.add(rid)

        # 2. Admit newly-arrived requests in order.
        while waiting and waiting[0].arrival <= clock and len(running) < config.max_batch:
            request = waiting[0]
            fresh, prefix_blocks, cached_tokens = fresh_blocks_needed(request)
            if not all(managers[s].can_allocate(fresh) for s in stages):
                break
            waiting.pop(0)
            key = _PREFIX_KEY if prefix_blocks else None
            for s in stages:
                kv_alloc[s] += managers[s].admit(
                    request.rid, cost.blocks_for_tokens(request.prompt_tokens),
                    clock, prefix_key=key, prefix_blocks=prefix_blocks,
                )
            if cached_tokens:
                tape.prefix_cache_hits += 1
                tape.prefix_saved_tokens += cached_tokens
            running[request.rid] = _Active(
                request=request, order=next_order,
                context=request.prompt_tokens, generated=1,
                blocks_held=cost.blocks_for_tokens(request.prompt_tokens),
                prefix_blocks=prefix_blocks, prefill_iter=iteration,
            )
            next_order += 1
            prefills.append((request.rid, max(1, request.prompt_tokens - cached_tokens)))
            gate = request.arrival if gate is None else max(gate, request.arrival)

        # 3. Decode one token for every request admitted before this
        #    iteration, in admission order.  Victims are only taken
        #    from later-admitted requests that have not decoded yet
        #    this iteration (and were not just resumed or prefilled),
        #    so an evicted block is never read after its swap-out.
        prefill_rids = {rid for rid, _ in prefills}
        for _, rid in sorted(
            (state.order, rid)
            for rid, state in running.items()
            if rid not in prefill_rids
        ):
            if rid not in running:
                continue  # evicted by an earlier decode this iteration
            state = running[rid]
            if state.context + 1 > state.blocks_held * config.block_tokens:
                stalled = False
                while not all(managers[s].can_allocate(1) for s in stages):
                    victims = [
                        (other.order, other_rid)
                        for other_rid, other in running.items()
                        if other.order > state.order
                        and other_rid not in prefill_rids
                        and other_rid not in resumed
                    ]
                    if victims:
                        suspend(max(victims)[1])
                    elif rid in resumed:
                        stalled = True  # just swapped in; sit this one out
                        break
                    else:
                        suspend(rid)
                        break
                if stalled or rid not in running:
                    continue
                for s in stages:
                    kv_alloc[s] += managers[s].append(rid, 1, clock)
                state.blocks_held += 1
            decodes.append((rid, state.context))
            state.context += 1
            state.generated += 1

        # 4. Retire completed requests; their KV drops with the
        #    iteration's compute.
        for rid, _ in prefills + decodes:
            state = running.get(rid)
            if state is None:
                continue
            if state.generated >= state.request.output_tokens:
                for s in stages:
                    kv_free[s] += managers[s].free_request(rid, clock)
                tape.completion[rid] = (state.prefill_iter, iteration)
                tape.total_output_tokens += state.request.output_tokens
                del running[rid]

        if not prefills and not decodes:
            idle_passes += 1
            if idle_passes > 64:
                raise SimulationError(
                    "serving livelock: suspend/resume cycles without progress "
                    "(shrink shared_prefix_tokens or grow kv_pool_mib)")
            if suspended_now or resumed:
                continue  # suspension/resume made progress, retry
            if waiting and not running:
                clock = max(clock, waiting[0].arrival)
                continue
            raise SimulationError(
                "serving deadlock: suspended work cannot fit back into the KV "
                "pool (shrink shared_prefix_tokens or grow kv_pool_mib)")
        idle_passes = 0

        prefill_tokens = [tokens for _, tokens in prefills]
        decode_contexts = [context for _, context in decodes]
        durations = []
        for s in stages:
            durations.append(cost.stage_duration(s, prefill_tokens, decode_contexts))
            tape.total_flops += sum(cost.prefill_flops(s, t) for t in prefill_tokens)
            tape.total_flops += sum(cost.decode_flops(s, c) for c in decode_contexts)
        clock += sum(durations)

        tape.iterations.append(
            IterationRecord(
                index=iteration,
                gate=gate,
                prefills=tuple(prefills),
                decodes=tuple(decodes),
                stage_durations=tuple(durations),
                kv_alloc=tuple(kv_alloc),
                kv_free=tuple(kv_free),
                boundary_tokens=sum(prefill_tokens) + len(decodes),
            )
        )
    else:
        raise SimulationError(
            "serving scheduler exceeded the pass guard — the KV pool is too "
            "small for the workload to make progress")

    for manager in managers:
        manager.check_books()
    if len(tape.completion) != len(tape.requests):
        raise SimulationError(
            f"serving ended with {len(tape.completion)} of "
            f"{len(tape.requests)} requests completed")
    return tape


def validate_pool(cost: ServingCost, requests: List[Request]) -> None:
    """Fail fast if any single request can never fit its KV."""
    worst = max(
        cost.blocks_for_tokens(r.prompt_tokens + r.output_tokens) for r in requests
    )
    for s in range(cost.n_stages):
        if worst * cost.block_bytes(s) > cost.kv_pool_bytes(s):
            raise ConfigurationError(
                f"stage {s}: a single request needs {worst} KV blocks "
                f"({worst * cost.block_bytes(s)} bytes) but the pool holds "
                f"{cost.kv_pool_bytes(s)} — raise kv_pool_mib")
