"""Serving metrics: TTFT/TPOT percentiles, throughput, decode stall.

Computed from the simulation trace (the ``"step"`` record each
iteration's last-stage compute publishes) joined with the tape's
per-request admission/completion records:

* **TTFT** — request arrival to the end of its prefill iteration on
  the last stage (the first output token exists once the final stage
  finished that iteration);
* **TPOT** — remaining latency per additional output token;
* **decode stall** — idle time the stage devices spend in front of
  swap-gated iterations, i.e. the cost of waiting for KV blocks to
  come back.  This is the quantity the D2D-vs-PCIe crossover test
  compares at equal spill volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.inference.scheduler import ServingTape
from repro.inference.workload import InferenceConfig


@dataclass(frozen=True)
class ServingMetrics:
    """One serving episode's summary statistics (all times in seconds)."""

    n_requests: int
    n_iterations: int
    total_output_tokens: int
    makespan: float
    tokens_per_second: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    tpot_p50: float
    tpot_p95: float
    tpot_p99: float
    decode_stall_seconds: float
    swapped_requests: int
    swapped_bytes: int
    preemptions: int
    prefix_cache_hits: int
    prefix_saved_tokens: int
    kv_swap: str

    def to_json(self) -> Dict[str, object]:
        return {
            "n_requests": self.n_requests,
            "n_iterations": self.n_iterations,
            "total_output_tokens": self.total_output_tokens,
            "makespan": self.makespan,
            "tokens_per_second": self.tokens_per_second,
            "ttft_p50": self.ttft_p50,
            "ttft_p95": self.ttft_p95,
            "ttft_p99": self.ttft_p99,
            "tpot_p50": self.tpot_p50,
            "tpot_p95": self.tpot_p95,
            "tpot_p99": self.tpot_p99,
            "decode_stall_seconds": self.decode_stall_seconds,
            "swapped_requests": self.swapped_requests,
            "swapped_bytes": self.swapped_bytes,
            "preemptions": self.preemptions,
            "prefix_cache_hits": self.prefix_cache_hits,
            "prefix_saved_tokens": self.prefix_saved_tokens,
            "kv_swap": self.kv_swap,
        }


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise SimulationError(f"percentile rank {q} out of range")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n*q/100), min 1
    return ordered[int(rank) - 1]


def _step_windows(trace) -> Dict[Tuple[int, int], Tuple[float, float]]:
    """(device, iteration) -> (start, end) of that iteration's compute."""
    windows: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for event in trace.events:
        if event.kind == "step":
            windows[(event.device, event.microbatch)] = (event.start, event.end)
    return windows


def compute_metrics(
    simulation, tape: ServingTape, config: InferenceConfig
) -> ServingMetrics:
    """Join the simulated trace with the tape into serving statistics."""
    windows = _step_windows(simulation.trace)
    last_stage_device = config.pp - 1
    iter_end: Dict[int, float] = {
        iteration: windows[(last_stage_device, iteration)][1]
        for iteration in range(tape.n_iterations)
        if (last_stage_device, iteration) in windows
    }
    if len(iter_end) != tape.n_iterations:
        raise SimulationError(
            f"trace covers {len(iter_end)} of {tape.n_iterations} serving "
            "iterations — was record_trace disabled?")

    arrivals = {request.rid: request.arrival for request in tape.requests}
    outputs = {request.rid: request.output_tokens for request in tape.requests}
    ttfts: List[float] = []
    tpots: List[float] = []
    for rid, (prefill_iter, last_iter) in sorted(tape.completion.items()):
        first_token = iter_end[prefill_iter]
        ttfts.append(first_token - arrivals[rid])
        extra_tokens = outputs[rid] - 1
        if extra_tokens > 0:
            tpots.append((iter_end[last_iter] - first_token) / extra_tokens)

    # Decode stall: device idle time immediately before a swap-gated
    # iteration — compute could otherwise have started when the
    # previous iteration on that device finished.
    stall = 0.0
    gated = tape.swap_gated_iterations
    for device in range(config.pp):
        previous_end = None
        for iteration in range(tape.n_iterations):
            window = windows.get((device, iteration))
            if window is None:
                continue
            start, end = window
            if iteration in gated and previous_end is not None:
                stall += max(0.0, start - previous_end)
            previous_end = end

    makespan = simulation.makespan
    tokens_per_second = (
        tape.total_output_tokens / makespan if makespan > 0 else 0.0
    )
    return ServingMetrics(
        n_requests=len(tape.requests),
        n_iterations=tape.n_iterations,
        total_output_tokens=tape.total_output_tokens,
        makespan=makespan,
        tokens_per_second=tokens_per_second,
        ttft_p50=percentile(ttfts, 50),
        ttft_p95=percentile(ttfts, 95),
        ttft_p99=percentile(ttfts, 99),
        tpot_p50=percentile(tpots, 50),
        tpot_p95=percentile(tpots, 95),
        tpot_p99=percentile(tpots, 99),
        decode_stall_seconds=stall,
        swapped_requests=tape.swapped_requests,
        swapped_bytes=tape.swapped_bytes,
        preemptions=tape.preemptions,
        prefix_cache_hits=tape.prefix_cache_hits,
        prefix_saved_tokens=tape.prefix_saved_tokens,
        kv_swap=config.kv_swap,
    )
