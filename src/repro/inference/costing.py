"""Prefill/decode cost accounting derived from the training cost model.

Serving reuses the exact analytic formulas training uses
(`repro.models.costs`) but charges them per phase: a prefill is one
full-sequence forward pass over the prompt (the head only computes
the last position's logits — serving never materializes per-token
logits for the prompt), and a decode is one token's forward pass that
additionally streams the request's whole KV cache out of HBM.  Stage
iteration time is the max of the compute-bound and HBM-bound
estimates, which is what makes decode memory-bandwidth-bound at small
batch — the behaviour that motivates KV paging and swap in the first
place.

Weights are held in fp16 inference form (no gradients, no optimizer
state); everything left on the device after weights is the KV pool.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.hardware.server import Server
from repro.inference.workload import InferenceConfig
from repro.models import costs
from repro.models.layers import LayerKind, ModelSpec
from repro.pipeline.partition import partition_model
from repro.units import MiB

# Inference holds fp16 weights only: 2 bytes per parameter.
INFERENCE_PARAM_BYTES = 2
KV_BYTES_PER_ELEMENT = 2


class ServingCost:
    """Cost oracle binding one model to one server and serving config."""

    def __init__(self, model: ModelSpec, server: Server, config: InferenceConfig):
        if config.pp > server.n_gpus:
            raise ConfigurationError(
                f"pp={config.pp} stages need {config.pp} GPUs, "
                f"server {server.name} has {server.n_gpus}")
        self.model = model
        self.server = server
        self.config = config
        self.plan = partition_model(model, config.pp, strategy="computation",
                                    microbatch=1)
        self.hidden = model.config.hidden
        self.vocab = model.config.vocab
        for stage_id in range(config.pp):
            # A stage must fit its weights with room for at least one
            # KV block, or the workload can never start.
            if self.kv_pool_bytes(stage_id) < self.block_bytes(stage_id):
                raise ConfigurationError(
                    f"stage {stage_id}: weights leave no room for a single "
                    f"KV block on {server.gpu(self.stage_device(stage_id)).name}")

    # -- placement ---------------------------------------------------------

    @property
    def n_stages(self) -> int:
        return self.config.pp

    def stage_device(self, stage: int) -> int:
        """Stage ``s`` runs on GPU ``s``; the rest are spare-memory peers."""
        return stage

    @property
    def spare_devices(self) -> List[int]:
        return list(range(self.config.pp, self.server.n_gpus))

    # -- static footprints -------------------------------------------------

    def weight_bytes(self, stage: int) -> int:
        return self.plan.stage(stage).params * INFERENCE_PARAM_BYTES

    def n_transformer_layers(self, stage: int) -> int:
        return sum(
            1 for layer in self.plan.stage(stage).layers
            if layer.kind is LayerKind.TRANSFORMER
        )

    def kv_token_bytes(self, stage: int) -> int:
        """KV bytes one token pins on this stage (all its layers)."""
        return self.n_transformer_layers(stage) * costs.kv_cache_bytes_per_token(
            self.hidden, KV_BYTES_PER_ELEMENT)

    def block_bytes(self, stage: int) -> int:
        per_token = self.kv_token_bytes(stage)
        if per_token == 0:
            # Embedding/head-only stages store no KV; give them a
            # token-sized placeholder so block arithmetic stays uniform.
            per_token = costs.kv_cache_bytes_per_token(self.hidden, KV_BYTES_PER_ELEMENT)
        return self.config.block_tokens * per_token

    def blocks_for_tokens(self, tokens: int) -> int:
        if tokens < 0:
            raise ConfigurationError(f"token count must be >= 0, got {tokens}")
        return -(-tokens // self.config.block_tokens)

    def kv_pool_bytes(self, stage: int) -> int:
        """KV capacity of the stage's GPU: memory minus resident weights."""
        gpu = self.server.gpu(self.stage_device(stage))
        spare = gpu.memory_bytes - self.weight_bytes(stage)
        if spare <= 0:
            raise ConfigurationError(
                f"stage {stage}: {self.weight_bytes(stage)} bytes of weights "
                f"exceed {gpu.name}'s memory")
        if self.config.kv_pool_mib is None:
            return spare
        return min(spare, self.config.kv_pool_mib * MiB)

    # -- per-phase FLOPs ---------------------------------------------------

    def prefill_flops(self, stage: int, prompt_tokens: int) -> float:
        """One request's prefill over ``prompt_tokens`` on this stage."""
        total = 0.0
        for layer in self.plan.stage(stage).layers:
            if layer.kind is LayerKind.EMBEDDING:
                total += costs.embedding_forward_flops(self.hidden, prompt_tokens, 1)
            elif layer.kind is LayerKind.TRANSFORMER:
                total += costs.layer_forward_flops(self.hidden, prompt_tokens, 1)
            else:
                # Only the last position's logits are needed.
                total += costs.head_forward_flops(self.hidden, self.vocab, 1, 1)
        return total

    def decode_flops(self, stage: int, context_tokens: int) -> float:
        """One request's single-token decode against ``context_tokens``."""
        total = 0.0
        for layer in self.plan.stage(stage).layers:
            if layer.kind is LayerKind.EMBEDDING:
                total += costs.embedding_forward_flops(self.hidden, 1, 1)
            elif layer.kind is LayerKind.TRANSFORMER:
                total += costs.layer_decode_flops(self.hidden, context_tokens)
            else:
                total += costs.head_forward_flops(self.hidden, self.vocab, 1, 1)
        return total

    # -- iteration timing --------------------------------------------------

    def throughput(self, stage: int) -> float:
        gpu = self.server.gpu(self.stage_device(stage))
        return gpu.peak_flops("fp16") * self.config.mfu

    def stage_duration(
        self,
        stage: int,
        prefill_tokens: Sequence[int],
        decode_contexts: Sequence[int],
    ) -> float:
        """One continuous-batching iteration's time on one stage.

        ``prefill_tokens`` are the *chargeable* prompt lengths of this
        iteration's prefills (prefix-cache hits already subtracted);
        ``decode_contexts`` the KV context each decoding request reads.
        """
        if not prefill_tokens and not decode_contexts:
            return 0.0
        flops = sum(self.prefill_flops(stage, t) for t in prefill_tokens)
        flops += sum(self.decode_flops(stage, c) for c in decode_contexts)
        compute = flops / self.throughput(stage)
        gpu = self.server.gpu(self.stage_device(stage))
        kv_read = sum(decode_contexts) * self.kv_token_bytes(stage)
        hbm = (self.weight_bytes(stage) + kv_read) / gpu.hbm_bandwidth
        return max(compute, hbm)

    def boundary_bytes(self, tokens: int) -> int:
        """Activation bytes crossing a stage boundary for ``tokens``."""
        if tokens <= 0:
            return 0
        return costs.layer_boundary_bytes(self.hidden, tokens, 1, KV_BYTES_PER_ELEMENT)
