"""LLM serving workloads on the training simulator's substrate.

The paper's D2D swap insight — NVLink aggregate bandwidth dwarfs PCIe
and spare memory exists on peer GPUs — is a property of the topology
and memory model, not of training.  This package applies it to the
serving-side memory problem: paged KV caches under continuous
batching, with cold KV blocks striped to spare-memory GPUs when a
device's pool fills (host swap over PCIe and vLLM-style recompute
preemption as baselines).
"""

from repro.inference.costing import ServingCost
from repro.inference.kvcache import KVBlockManager
from repro.inference.lowering import build_serving_program
from repro.inference.metrics import ServingMetrics, compute_metrics, percentile
from repro.inference.run import ServingOutcome, run_serving
from repro.inference.scheduler import (
    IterationRecord,
    ServingTape,
    SwapDecision,
    schedule_serving,
)
from repro.inference.workload import InferenceConfig, Request, generate_requests

__all__ = [
    "InferenceConfig",
    "IterationRecord",
    "KVBlockManager",
    "Request",
    "ServingCost",
    "ServingMetrics",
    "ServingOutcome",
    "ServingTape",
    "SwapDecision",
    "build_serving_program",
    "compute_metrics",
    "generate_requests",
    "percentile",
    "run_serving",
    "schedule_serving",
]
