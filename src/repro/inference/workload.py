"""Serving workload model: request arrivals and token budgets.

An :class:`InferenceConfig` describes one LLM serving experiment the
way a :class:`~repro.job.TrainingJob` describes one training run —
everything is plain frozen data so the config hashes into the
runtime's content-addressed cache keys unchanged.  Requests are drawn
from seeded distributions (Poisson or uniform arrivals, clamped
Gaussian prompt/output lengths) or replayed from an explicit trace,
so the same config always produces the same workload byte-for-byte.

Each request later runs in two phases (the serving literature's
prefill/decode split): one full-sequence forward pass over the prompt
that produces the first output token, then one forward pass per
additional token reading the KV cache of everything before it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError

_ARRIVALS = ("poisson", "uniform", "trace")
_KV_SWAPS = ("d2d", "pcie", "none")


@dataclass(frozen=True)
class InferenceConfig:
    """One serving experiment: workload, batching, and KV policy.

    ``kv_swap`` selects what happens when a GPU's KV pool fills:
    ``"d2d"`` stripes cold blocks over NVLink to spare-memory GPUs
    (the paper's D2D swap, applied to inference), ``"pcie"`` spills
    them to host memory over PCIe, and ``"none"`` preempts the victim
    request entirely (vLLM-style recompute preemption).
    """

    seed: int = 0
    n_requests: int = 16
    arrival: str = "poisson"          # "poisson" | "uniform" | "trace"
    arrival_rate: float = 8.0         # requests per second
    prompt_mean: int = 128
    prompt_min: int = 16
    prompt_max: int = 512
    output_mean: int = 32
    output_min: int = 4
    output_max: int = 128
    block_tokens: int = 16            # KV paging granularity
    max_batch: int = 8                # continuous-batching admission cap
    pp: int = 1                       # serving pipeline stages
    mfu: float = 0.45                 # fp16 kernels, DAPPLE-era stack
    kv_swap: str = "d2d"              # "d2d" | "pcie" | "none"
    kv_pool_mib: Optional[int] = None  # per-stage KV pool cap (None = all spare)
    shared_prefix_tokens: int = 0     # system-prompt length shared via radix reuse
    shared_prefix_fraction: float = 0.0
    # Trace-driven arrivals: ((arrival_s, prompt_tokens, output_tokens), ...).
    trace: Optional[Tuple[Tuple[float, int, int], ...]] = None

    def __post_init__(self) -> None:
        if self.arrival not in _ARRIVALS:
            raise ConfigurationError(
                f"unknown arrival model {self.arrival!r}; options: {sorted(_ARRIVALS)}")
        if self.kv_swap not in _KV_SWAPS:
            raise ConfigurationError(
                f"unknown kv_swap {self.kv_swap!r}; options: {sorted(_KV_SWAPS)}")
        if (self.trace is not None) != (self.arrival == "trace"):
            raise ConfigurationError(
                'trace-driven workloads need both arrival="trace" and a trace')
        if self.trace is not None:
            if not self.trace:
                raise ConfigurationError("a request trace cannot be empty")
            for entry in self.trace:
                if len(entry) != 3:
                    raise ConfigurationError(
                        "trace entries are (arrival, prompt, output) triples")
                arrival, prompt, output = entry
                if arrival < 0 or prompt < 1 or output < 1:
                    raise ConfigurationError(
                        f"invalid trace entry {entry!r}: arrival must be >= 0, "
                        "prompt/output >= 1")
        elif self.n_requests < 1:
            raise ConfigurationError("n_requests must be positive")
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if not 1 <= self.prompt_min <= self.prompt_mean <= self.prompt_max:
            raise ConfigurationError(
                "prompt lengths need 1 <= prompt_min <= prompt_mean <= prompt_max")
        if not 1 <= self.output_min <= self.output_mean <= self.output_max:
            raise ConfigurationError(
                "output lengths need 1 <= output_min <= output_mean <= output_max")
        if self.block_tokens < 1:
            raise ConfigurationError("block_tokens must be positive")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be positive")
        if self.pp < 1:
            raise ConfigurationError("pp must be at least one stage")
        if not 0 < self.mfu <= 1:
            raise ConfigurationError("mfu must be in (0, 1]")
        if self.kv_pool_mib is not None and self.kv_pool_mib <= 0:
            raise ConfigurationError("kv_pool_mib must be positive when set")
        if not 0.0 <= self.shared_prefix_fraction <= 1.0:
            raise ConfigurationError("shared_prefix_fraction must be in [0, 1]")
        if self.shared_prefix_fraction > 0 and self.shared_prefix_tokens < 1:
            raise ConfigurationError(
                "shared_prefix_fraction > 0 needs shared_prefix_tokens >= 1")


@dataclass(frozen=True)
class Request:
    """One serving request: arrival time plus token budgets."""

    rid: int
    arrival: float
    prompt_tokens: int
    output_tokens: int
    shared_prefix: bool = False

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigurationError("request arrival must be >= 0")
        if self.prompt_tokens < 1 or self.output_tokens < 1:
            raise ConfigurationError("requests need at least one prompt and output token")


def _clamped_gauss(rng: random.Random, mean: int, lo: int, hi: int) -> int:
    value = int(round(rng.gauss(mean, max(1.0, mean / 3.0))))
    return max(lo, min(hi, value))


def generate_requests(config: InferenceConfig) -> List[Request]:
    """Materialize the config's request stream (seeded, deterministic)."""
    if config.trace is not None:
        entries = sorted(config.trace, key=lambda e: (e[0], e[1], e[2]))
        return [
            Request(rid=rid, arrival=float(arrival), prompt_tokens=int(prompt),
                    output_tokens=int(output))
            for rid, (arrival, prompt, output) in enumerate(entries)
        ]
    rng = random.Random(config.seed)
    requests: List[Request] = []
    now = 0.0
    for rid in range(config.n_requests):
        if config.arrival == "poisson":
            now += rng.expovariate(config.arrival_rate)
        else:
            now = rid / config.arrival_rate
        prompt = _clamped_gauss(rng, config.prompt_mean,
                                config.prompt_min, config.prompt_max)
        output = _clamped_gauss(rng, config.output_mean,
                                config.output_min, config.output_max)
        shared = rng.random() < config.shared_prefix_fraction
        if shared:
            # A shared system prompt occupies the head of the request's
            # prompt; keep at least one private token behind it.
            prompt = max(prompt, config.shared_prefix_tokens + 1)
        requests.append(Request(rid=rid, arrival=now, prompt_tokens=prompt,
                                output_tokens=output, shared_prefix=shared))
    return requests
