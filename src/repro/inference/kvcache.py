"""Paged KV-cache accounting: fixed-size blocks with prefix sharing.

The KV cache is serving's dominant memory consumer, so it gets the
same first-class treatment training state does: every block lives in
a :class:`~repro.sim.memory.DeviceMemory` book, allocated in
fixed-size pages (vLLM-style) and shared across requests that carry
the same prompt prefix (SGLang radix-tree-style, flattened to
whole-block exact-prefix reuse with refcounts).

:class:`KVBlockManager` is the planning-time ledger: the serving
scheduler drives it with admit/append/evict/free calls and emits the
resulting byte deltas as ``Alloc``/``Drop`` effects on the lowered
instruction program, so the interpreters' strict memory books replay
exactly what the ledger decided.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.memory import DeviceMemory


class KVBlockManager:
    """Refcounted fixed-size KV blocks drawn from one device book."""

    def __init__(self, book: DeviceMemory, block_bytes: int, tag: str = "kv"):
        if block_bytes <= 0:
            raise SimulationError(f"block_bytes must be positive, got {block_bytes}")
        self.book = book
        self.block_bytes = block_bytes
        self.tag = tag
        self._refcount: Dict[int, int] = {}
        self._next_block = 0
        # rid -> block ids, shared prefix blocks first.
        self.block_table: Dict[int, List[int]] = {}
        self._shared_count: Dict[int, int] = {}
        # prefix key -> block ids; the index holds one reference of its
        # own so cached prefixes survive gaps between sharers (a radix
        # cache retains entries until explicitly dropped).
        self._prefix_index: Dict[str, List[int]] = {}

    # -- invariants --------------------------------------------------------

    @property
    def live_blocks(self) -> int:
        return len(self._refcount)

    @property
    def bytes_in_use(self) -> int:
        return self.live_blocks * self.block_bytes

    def blocks_of(self, rid: int) -> List[int]:
        if rid not in self.block_table:
            raise SimulationError(f"request {rid} holds no KV blocks")
        return list(self.block_table[rid])

    def private_blocks(self, rid: int) -> int:
        return len(self.blocks_of(rid)) - self._shared_count.get(rid, 0)

    def can_allocate(self, n_blocks: int) -> bool:
        return self.book.in_use + n_blocks * self.block_bytes <= self.book.capacity

    def has_prefix(self, prefix_key: str) -> bool:
        return prefix_key in self._prefix_index

    # -- block plumbing ----------------------------------------------------

    def _new_block(self, now: float) -> int:
        self.book.alloc(self.block_bytes, now, self.tag)
        bid = self._next_block
        self._next_block += 1
        self._refcount[bid] = 1
        return bid

    def _retain(self, bid: int) -> None:
        count = self._refcount.get(bid, 0)
        if count <= 0:
            raise SimulationError(f"retain of dead KV block {bid}")
        self._refcount[bid] = count + 1

    def _release(self, bid: int, now: float) -> int:
        """Drop one reference; returns bytes physically freed (0 or block)."""
        count = self._refcount.get(bid, 0)
        if count <= 0:
            raise SimulationError(f"double free of KV block {bid}")
        count -= 1
        if count == 0:
            del self._refcount[bid]
            self.book.free(self.block_bytes, now, self.tag)
            return self.block_bytes
        self._refcount[bid] = count
        return 0

    # -- request lifecycle -------------------------------------------------

    def admit(
        self,
        rid: int,
        n_blocks: int,
        now: float,
        prefix_key: Optional[str] = None,
        prefix_blocks: int = 0,
    ) -> int:
        """Give ``rid`` its prefill footprint; returns fresh bytes allocated.

        ``prefix_blocks`` leading blocks are looked up in (or inserted
        into) the prefix cache; a hit retains the cached blocks instead
        of allocating, which is exactly the radix-reuse saving.
        """
        if rid in self.block_table:
            raise SimulationError(f"request {rid} admitted twice")
        if prefix_blocks < 0 or prefix_blocks > n_blocks:
            raise SimulationError(
                f"prefix_blocks {prefix_blocks} out of range for {n_blocks} blocks")
        blocks: List[int] = []
        fresh = 0
        if prefix_key is not None and prefix_blocks > 0:
            shared = self._prefix_index.get(prefix_key)
            if shared is None:
                # First sharer materializes the prefix: one reference
                # for the index, one for this request.
                shared = []
                for _ in range(prefix_blocks):
                    bid = self._new_block(now)
                    self._retain(bid)
                    shared.append(bid)
                    fresh += 1
                self._prefix_index[prefix_key] = shared
            else:
                if len(shared) != prefix_blocks:
                    raise SimulationError(
                        f"prefix {prefix_key!r} cached with {len(shared)} blocks, "
                        f"asked for {prefix_blocks}")
                for bid in shared:
                    self._retain(bid)
            blocks.extend(shared)
        else:
            prefix_blocks = 0
        for _ in range(n_blocks - prefix_blocks):
            blocks.append(self._new_block(now))
            fresh += 1
        self.block_table[rid] = blocks
        self._shared_count[rid] = prefix_blocks
        return fresh * self.block_bytes

    def append(self, rid: int, n_blocks: int, now: float) -> int:
        """Grow ``rid`` by fresh private blocks; returns bytes allocated."""
        if n_blocks < 0:
            raise SimulationError(f"cannot append {n_blocks} blocks")
        blocks = self.block_table.get(rid)
        if blocks is None:
            raise SimulationError(f"request {rid} holds no KV blocks")
        for _ in range(n_blocks):
            blocks.append(self._new_block(now))
        return n_blocks * self.block_bytes

    def evict_private(self, rid: int, now: float) -> int:
        """Swap-out: release ``rid``'s private blocks, keep shared prefix.

        Returns the bytes physically freed — the spill volume the
        lowering must move off-device.  The request stays in the table
        holding only its shared prefix, ready for :meth:`restore_private`.
        """
        blocks = self.block_table.get(rid)
        if blocks is None:
            raise SimulationError(f"request {rid} holds no KV blocks")
        shared = self._shared_count.get(rid, 0)
        freed = 0
        for bid in blocks[shared:]:
            freed += self._release(bid, now)
        del blocks[shared:]
        return freed

    def restore_private(self, rid: int, n_blocks: int, now: float) -> int:
        """Swap-in: re-allocate private blocks after an eviction."""
        return self.append(rid, n_blocks, now)

    def free_request(self, rid: int, now: float) -> int:
        """Completion/preemption: drop every reference ``rid`` holds.

        Returns bytes physically freed (shared prefix blocks stay
        cached — the index keeps its own reference).
        """
        blocks = self.block_table.pop(rid, None)
        if blocks is None:
            raise SimulationError(f"request {rid} holds no KV blocks")
        self._shared_count.pop(rid, None)
        freed = 0
        for bid in blocks:
            freed += self._release(bid, now)
        return freed

    def drop_prefix(self, prefix_key: str, now: float) -> int:
        """Evict a cached prefix from the index (radix-cache eviction)."""
        shared = self._prefix_index.pop(prefix_key, None)
        if shared is None:
            raise SimulationError(f"prefix {prefix_key!r} not cached")
        freed = 0
        for bid in shared:
            freed += self._release(bid, now)
        return freed

    def check_books(self) -> None:
        """Assert the ledger and the DeviceMemory book agree exactly."""
        booked = self.book.usage_by_tag().get(self.tag, 0)
        if booked != self.bytes_in_use:
            raise SimulationError(
                f"KV ledger says {self.bytes_in_use} bytes but book holds {booked}")
