"""End-to-end serving entry point: schedule, lower, simulate, measure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.server import Server
from repro.inference.costing import ServingCost
from repro.inference.lowering import build_serving_program
from repro.inference.metrics import ServingMetrics, compute_metrics
from repro.inference.scheduler import ServingTape
from repro.inference.workload import InferenceConfig
from repro.models.layers import ModelSpec
from repro.sim.fastpath import run_program
from repro.sim.interpreter import Interpreter, SimulationResult
from repro.sim.ir import ExecOptions


@dataclass(frozen=True)
class ServingOutcome:
    """Everything one serving simulation produced."""

    simulation: SimulationResult
    metrics: ServingMetrics
    tape: ServingTape
    cost: ServingCost


def run_serving(
    model: ModelSpec,
    server: Server,
    config: InferenceConfig,
    options: Optional[ExecOptions] = None,
    reference: bool = False,
) -> ServingOutcome:
    """Simulate one serving episode end to end.

    ``reference=True`` forces the event-driven reference interpreter;
    the default dispatches through :func:`repro.sim.fastpath.run_program`
    exactly like training runs do (fast tape replay when eligible).
    """
    program, tape, cost = build_serving_program(model, server, config, options)
    if reference:
        simulation = Interpreter(program).run()
    else:
        simulation = run_program(program)
    metrics = compute_metrics(simulation, tape, config)
    return ServingOutcome(simulation=simulation, metrics=metrics,
                          tape=tape, cost=cost)
