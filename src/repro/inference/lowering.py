"""Lower a serving tape onto the discrete-event instruction IR.

The scheduler decided *what* happens each continuous-batching
iteration; this module decides *when*, by emitting the same typed
instructions training lowers to (`repro.sim.ir`) so both interpreters
— reference and fast path — replay serving with real link timings,
strict memory books, traces, and fault hooks, unchanged.

Program shape per iteration:

* an arrival ``Barrier`` chain on one host stream gates iterations
  that admit requests (the wall-clock wait for the last admitted
  arrival);
* one ``Compute`` per stage on the stage device's FIFO compute
  stream, carrying the iteration's fresh KV ``Alloc``s at start and
  completion ``Drop``s + a ``"step"`` trace record at done;
* a ``P2PSend`` per stage boundary carries the batched activations;
* KV suspensions emit swap-outs *before* the iteration's computes and
  swap-ins before the resuming iteration's computes, wired exactly
  like the training paths: striped NVLink ``P2PSend``/``P2PRecv``
  fan-out for ``kv_swap="d2d"``, pinned-staging PCIe
  ``SwapOut``/``SwapIn`` for ``kv_swap="pcie"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.striping import build_stripe_plan
from repro.hardware.bandwidth import transfer_time
from repro.hardware.server import Server
from repro.inference.costing import ServingCost
from repro.inference.scheduler import ServingTape, SwapDecision, schedule_serving
from repro.inference.workload import InferenceConfig, generate_requests
from repro.models.layers import ModelSpec
from repro.pipeline.schedule import continuous_schedule
from repro.sim.ir import (
    HOST,
    Alloc,
    Barrier,
    Compute,
    Drop,
    ExecOptions,
    InstructionProgram,
    P2PRecv,
    P2PSend,
    Pin,
    Record,
    SwapIn,
    SwapOut,
    Unpin,
    _InstructionDraft,
    freeze_draft,
)

KV_TAG = "kv"


@dataclass(frozen=True)
class ServingJobView:
    """The job-shaped facade the interpreters read metrics through.

    ``samples_per_minibatch`` is the episode's total output tokens and
    ``n_minibatches`` is one, so ``samples_per_second`` comes out as
    generated tokens per second and ``minibatch_time`` as the episode
    makespan.
    """

    server: Server
    n_minibatches: int
    samples_per_minibatch: int
    total_flops: float

    def minibatch_flops(self) -> float:
        return self.total_flops


@dataclass(frozen=True)
class ServingPlanView:
    """Identity stage→device mapping (stage ``s`` on GPU ``s``)."""

    n_stages: int

    def device_of(self, stage: int) -> int:
        return stage


class _ServingLowering:
    """One serving episode's emission pass."""

    def __init__(self, cost: ServingCost, tape: ServingTape,
                 config: InferenceConfig, options: ExecOptions):
        self.cost = cost
        self.tape = tape
        self.config = config
        self.options = options
        self.server = cost.server
        self.topology = cost.server.topology
        self.drafts: List[_InstructionDraft] = []
        self.edges: List[Tuple[int, int]] = []
        self.static_effects: List[Alloc] = []
        self.stream_order: List[Tuple[Hashable, str]] = []
        self._seen_streams: set = set()
        # Per stage device: last compute iid (swap-outs serialize after it).
        self._last_compute: Dict[int, int] = {}
        # (rid, stage) -> iid of the open suspension's out-join.
        self._out_join: Dict[Tuple[int, int], int] = {}
        # iteration -> per-stage swap gates its computes must wait on.
        self._gates: Dict[int, Dict[int, List[int]]] = {}
        self._prev_arrival: Optional[int] = None
        self._prev_gate_time = 0.0
        # (rid, stage) -> StripePlan of the open D2D suspension.
        self._stripe_plans: Dict[Tuple[int, int], object] = {}

    # -- builder primitives (mirrors sim.lowering._PlanLowering) -----------

    def _touch_stream(self, key: Hashable, mode: str) -> None:
        if key not in self._seen_streams:
            self._seen_streams.add(key)
            self.stream_order.append((key, mode))

    def _emit(
        self,
        factory: type,
        name: str,
        stream: Hashable,
        mode: str,
        duration: float,
        deps: Tuple[int, ...] = (),
        start: Tuple = (),
        done: Tuple = (),
        device=0,
        **fields,
    ) -> int:
        self._touch_stream(stream, mode)
        iid = len(self.drafts)
        self.drafts.append(
            _InstructionDraft(
                factory=factory,
                iid=iid,
                name=name,
                stream=stream,
                mode=mode,
                duration=duration,
                device=device,
                start_effects=list(start),
                done_effects=list(done),
                fields=dict(fields),
            )
        )
        for dep in deps:
            self.edges.append((iid, dep))
        return iid

    def _edge(self, consumer: int, producer: int) -> None:
        self.edges.append((consumer, producer))

    def _gate(self, iteration: int, device: int, iid: int) -> None:
        self._gates.setdefault(iteration, {}).setdefault(device, []).append(iid)

    # -- static state ------------------------------------------------------

    def _lower_static(self) -> None:
        for stage in range(self.cost.n_stages):
            self.static_effects.append(
                Alloc(
                    device=self.cost.stage_device(stage),
                    size=self.cost.weight_bytes(stage),
                    tag=f"weights.stage{stage}",
                )
            )

    # -- KV swap wiring ----------------------------------------------------

    def _swap_out(self, decision: SwapDecision) -> None:
        device = decision.device
        tag = f"kvswap.r{decision.rid}.s{decision.stage}"
        anchor = self._last_compute.get(device)
        deps = (anchor,) if anchor is not None else ()
        if self.config.kv_swap == "pcie":
            out = self._emit(
                SwapOut,
                name=f"kvout.r{decision.rid}.s{decision.stage}",
                stream=("pcie_d2h", device),
                mode="pool",
                duration=transfer_time(decision.size, self.server.pcie, lanes=1),
                deps=deps,
                start=(Alloc(device=HOST, size=decision.size, tag=tag),
                       Pin(size=decision.size)),
                done=(Drop(device=device, size=decision.size, tag=KV_TAG),
                      Unpin(size=decision.size),
                      Record("swap_out", device, decision.out_iteration)),
                device=device,
                tag=tag,
                size=decision.size,
            )
            self._out_join[(decision.rid, decision.stage)] = out
            self._gate(decision.out_iteration, device, out)
            return
        budgets = {
            imp: self.server.gpu(imp).memory_bytes // 2
            for imp in self.cost.spare_devices
        }
        plan = build_stripe_plan(self.topology, device, budgets, decision.size)
        sends = []
        for k, block in enumerate(plan.blocks):
            sends.append(
                self._emit(
                    P2PSend,
                    name=f"kvout.r{decision.rid}.s{decision.stage}.b{k}",
                    stream=block.lane,
                    mode="pool",
                    duration=transfer_time(block.size, self.topology.nvlink, lanes=1),
                    deps=deps,
                    start=(Alloc(device=block.importer, size=block.size, tag=tag),),
                    device=device,
                    src=device,
                    dst=block.importer,
                )
            )
        out_join = self._emit(
            Barrier,
            name=f"kvout.r{decision.rid}.s{decision.stage}",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=tuple(sends),
            done=(Drop(device=device, size=decision.size, tag=KV_TAG),
                  Record("swap_out", device, decision.out_iteration)),
            device=device,
        )
        self._out_join[(decision.rid, decision.stage)] = out_join
        self._gate(decision.out_iteration, device, out_join)
        # Remember the stripe layout for the swap-in leg.
        self._stripe_plans[(decision.rid, decision.stage)] = plan

    def _swap_in(self, decision: SwapDecision) -> None:
        device = decision.device
        tag = f"kvswap.r{decision.rid}.s{decision.stage}"
        out_join = self._out_join.pop((decision.rid, decision.stage))
        iteration = decision.in_iteration
        if self.config.kv_swap == "pcie":
            back = self._emit(
                SwapIn,
                name=f"kvin.r{decision.rid}.s{decision.stage}",
                stream=("pcie_h2d", device),
                mode="pool",
                duration=transfer_time(decision.size, self.server.pcie, lanes=1),
                deps=(out_join,),
                start=(Alloc(device=device, size=decision.size, tag=KV_TAG),
                       Pin(size=decision.size)),
                done=(Drop(device=HOST, size=decision.size, tag=tag),
                      Unpin(size=decision.size),
                      Record("swap_in", device, iteration)),
                device=device,
                tag=tag,
                size=decision.size,
            )
            self._gate(iteration, device, back)
            return
        plan = self._stripe_plans.pop((decision.rid, decision.stage))
        in_begin = self._emit(
            Barrier,
            name=f"kvin.r{decision.rid}.s{decision.stage}.begin",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=(out_join,),
            done=(Alloc(device=device, size=decision.size, tag=KV_TAG),),
            device=device,
        )
        recvs = []
        for k, block in enumerate(plan.blocks):
            recvs.append(
                self._emit(
                    P2PRecv,
                    name=f"kvin.r{decision.rid}.s{decision.stage}.b{k}",
                    stream=block.return_lane,
                    mode="pool",
                    duration=transfer_time(block.size, self.topology.nvlink, lanes=1),
                    deps=(in_begin,),
                    done=(Drop(device=block.importer, size=block.size, tag=tag),),
                    device=device,
                    src=block.importer,
                    dst=device,
                )
            )
        in_join = self._emit(
            Barrier,
            name=f"kvin.r{decision.rid}.s{decision.stage}",
            stream=("d2d", device),
            mode="pool",
            duration=0.0,
            deps=tuple(recvs),
            done=(Record("swap_in", device, iteration),),
            device=device,
        )
        self._gate(iteration, device, in_join)

    # -- per-iteration compute ---------------------------------------------

    def _arrival_barrier(self, iteration, gate_time: float) -> int:
        delta = max(0.0, gate_time - self._prev_gate_time)
        self._prev_gate_time = max(self._prev_gate_time, gate_time)
        deps = (self._prev_arrival,) if self._prev_arrival is not None else ()
        iid = self._emit(
            Barrier,
            name=f"arrive.i{iteration}",
            stream=("arrivals",),
            mode="fifo",
            duration=delta,
            deps=deps,
            device=HOST,
        )
        self._prev_arrival = iid
        return iid

    def _lower_iteration(self, record) -> None:
        iteration = record.index
        arrival = None
        if record.gate is not None:
            arrival = self._arrival_barrier(iteration, record.gate)
        prev_stage: Optional[int] = None
        for stage in range(self.cost.n_stages):
            device = self.cost.stage_device(stage)
            deps: List[int] = []
            if stage == 0 and arrival is not None:
                deps.append(arrival)
            if prev_stage is not None:
                deps.append(prev_stage)
            deps.extend(self._gates.get(iteration, {}).get(device, ()))
            start = ()
            if record.kv_alloc[stage]:
                start = (Alloc(device=device, size=record.kv_alloc[stage], tag=KV_TAG),)
            done: List = []
            if record.kv_free[stage]:
                done.append(Drop(device=device, size=record.kv_free[stage], tag=KV_TAG))
            done.append(Record("step", device, iteration, layer=stage))
            compute = self._emit(
                Compute,
                name=f"serve.i{iteration}.s{stage}",
                stream=("compute", device),
                mode="fifo",
                duration=record.stage_durations[stage],
                deps=tuple(deps),
                start=start,
                done=tuple(done),
                device=device,
                stage=stage,
                microbatch=iteration,
                layer=stage,
                op="fwd",
            )
            self._last_compute[device] = compute
            prev_stage = compute
            if stage + 1 < self.cost.n_stages and record.boundary_tokens:
                prev_stage = self._boundary_send(iteration, stage, compute,
                                                record.boundary_tokens)

    def _boundary_send(self, iteration: int, stage: int, compute: int,
                       tokens: int) -> int:
        src = self.cost.stage_device(stage)
        dst = self.cost.stage_device(stage + 1)
        size = self.cost.boundary_bytes(tokens)
        if self.topology.lanes(src, dst) > 0:
            lane = self.topology.lane_channels(src, dst)[0]
            link = self.topology.link_for(src, dst)
            stream: Hashable = lane
        else:
            # Non-adjacent stages fall back to staged PCIe.
            link = self.server.pcie
            stream = ("pcie_p2p", src, dst)
        return self._emit(
            P2PSend,
            name=f"bound.i{iteration}.s{stage}",
            stream=stream,
            mode="pool",
            duration=transfer_time(size, link, lanes=1),
            deps=(compute,),
            device=src,
            src=src,
            dst=dst,
        )

    # -- assembly ----------------------------------------------------------

    def build(self) -> InstructionProgram:
        self._lower_static()
        swaps_out: Dict[int, List[SwapDecision]] = {}
        swaps_in: Dict[int, List[SwapDecision]] = {}
        for decision in self.tape.swaps:
            swaps_out.setdefault(decision.out_iteration, []).append(decision)
            if decision.in_iteration is not None:
                swaps_in.setdefault(decision.in_iteration, []).append(decision)
        for record in self.tape.iterations:
            for decision in swaps_out.get(record.index, ()):
                self._swap_out(decision)
            for decision in swaps_in.get(record.index, ()):
                self._swap_in(decision)
            self._lower_iteration(record)
        job = ServingJobView(
            server=self.server,
            n_minibatches=1,
            samples_per_minibatch=self.tape.total_output_tokens,
            total_flops=self.tape.total_flops,
        )
        plan = ServingPlanView(n_stages=self.cost.n_stages)
        return InstructionProgram(
            job=job,
            plan=plan,
            options=self.options,
            instructions=tuple(freeze_draft(d) for d in self.drafts),
            edges=tuple(self.edges),
            static_effects=tuple(self.static_effects),
            stream_order=tuple(self.stream_order),
        )


def build_serving_program(
    model: ModelSpec,
    server: Server,
    config: InferenceConfig,
    options: Optional[ExecOptions] = None,
) -> Tuple[InstructionProgram, ServingTape, ServingCost]:
    """Schedule and lower one serving episode; returns all three layers."""
    if options is None:
        options = ExecOptions()
    from repro.errors import ConfigurationError

    cost = ServingCost(model, server, config)
    requests = generate_requests(config)
    tape = schedule_serving(requests, cost, config)
    if tape.swaps and config.kv_swap == "d2d" and not cost.spare_devices:
        raise ConfigurationError(
            "kv_swap='d2d' needs spare-memory GPUs but every device hosts a "
            "stage; lower pp or use kv_swap='pcie'")
    # The schedule family is validated even though the per-iteration
    # content lives on the tape: it pins the forward-only invariant.
    continuous_schedule(cost.n_stages, max(1, tape.n_iterations))
    lowering = _ServingLowering(cost, tape, config, options)
    return lowering.build(), tape, cost
