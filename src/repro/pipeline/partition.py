"""Stage partitioning strategies.

The paper uses the *computation-balanced* partitioning recommended by
PipeDream and DAPPLE (balance per-stage compute time) and shows that
*memory-balanced* partitioning — while it would fix the imbalance of
Figure 2 — costs ~34% throughput (Section II-D).  Both are optimal
contiguous partitions of a per-layer weight vector, solved with the
classic linear-partition dynamic program (minimize the maximum stage
weight).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.errors import PartitionError
from repro.models.layers import LayerSpec, ModelSpec
from repro.pipeline.stage import Stage, StagePlan


def linear_partition(weights: Sequence[float], n_parts: int) -> List[int]:
    """Split ``weights`` into ``n_parts`` contiguous runs minimizing the
    maximum run sum.  Returns the start index of each run.

    Classic O(n^2 * k) dynamic program; exact, not heuristic.
    """
    n = len(weights)
    if n_parts < 1:
        raise PartitionError("need at least one part")
    if n < n_parts:
        raise PartitionError(f"cannot split {n} items into {n_parts} non-empty parts")

    prefix = [0.0]
    for w in weights:
        if w < 0:
            raise PartitionError("weights must be non-negative")
        prefix.append(prefix[-1] + w)

    def run_sum(i: int, j: int) -> float:
        return prefix[j] - prefix[i]

    INF = float("inf")
    # best[k][j]: minimal max-run-sum splitting first j items into k runs.
    best = [[INF] * (n + 1) for _ in range(n_parts + 1)]
    cut = [[0] * (n + 1) for _ in range(n_parts + 1)]
    best[0][0] = 0.0
    for k in range(1, n_parts + 1):
        for j in range(k, n + 1):
            for i in range(k - 1, j):
                candidate = max(best[k - 1][i], run_sum(i, j))
                if candidate < best[k][j]:
                    best[k][j] = candidate
                    cut[k][j] = i
    starts: List[int] = []
    j = n
    for k in range(n_parts, 0, -1):
        i = cut[k][j]
        starts.append(i)
        j = i
    starts.reverse()
    return starts


def _plan_from_starts(model: ModelSpec, starts: List[int]) -> StagePlan:
    stages = []
    bounds = starts + [model.n_layers]
    for stage_id in range(len(starts)):
        layer_slice = model.layers[bounds[stage_id]: bounds[stage_id + 1]]
        stages.append(Stage(stage_id=stage_id, layers=list(layer_slice)))
    return StagePlan(model=model, stages=stages)


def partition_computation_balanced(
    model: ModelSpec, n_stages: int, microbatch: int = 1
) -> StagePlan:
    """Balance per-stage forward+backward FLOPs (PipeDream/DAPPLE default)."""
    weights = [
        layer.forward_flops(microbatch) + layer.backward_flops(microbatch)
        for layer in model.layers
    ]
    return _plan_from_starts(model, linear_partition(weights, n_stages))


def partition_memory_balanced(
    model: ModelSpec, n_stages: int, microbatch: int = 1
) -> StagePlan:
    """Balance per-stage memory footprint.

    The weight of a layer combines its model state with the
    activations it accumulates.  Activation accumulation depends on
    stage position (earlier stages hold more in-flight copies), which
    a per-layer weight cannot express exactly; following the paper we
    approximate with the average in-flight count so the partition
    shifts layers toward late stages.
    """
    def memory_weight(layer: LayerSpec) -> float:
        state = layer.params * 16.0
        average_in_flight = (n_stages + 1) / 2.0
        return state + average_in_flight * layer.activation_bytes(microbatch)

    weights = [memory_weight(layer) for layer in model.layers]
    return _plan_from_starts(model, linear_partition(weights, n_stages))


_STRATEGIES: dict = {
    "computation": partition_computation_balanced,
    "memory": partition_memory_balanced,
}


def partition_model(
    model: ModelSpec,
    n_stages: int,
    strategy: str = "computation",
    microbatch: int = 1,
) -> StagePlan:
    """Partition ``model`` with a named strategy.

    >>> from repro.models import bert_variant
    >>> plan = partition_model(bert_variant(0.35), 8)
    >>> plan.n_stages
    8
    """
    builder: Callable = _STRATEGIES.get(strategy)
    if builder is None:
        raise PartitionError(f"unknown partition strategy {strategy!r}")
    return builder(model, n_stages, microbatch=microbatch)
