"""Pipeline schedules: per-stage ordered op sequences.

A :class:`PipelineSchedule` lists, for every stage, the exact order
in which it runs forward passes, backward passes, and optimizer
steps over the microbatches of one or more minibatches — the
information Figure 1 of the paper draws as black/white boxes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import ScheduleError


class OpKind(enum.Enum):
    FORWARD = "fwd"
    BACKWARD = "bwd"
    OPTIMIZER = "opt"


@dataclass(frozen=True)
class ScheduleOp:
    """One scheduled computation on one stage."""

    kind: OpKind
    microbatch: int   # global microbatch id; -1 for optimizer steps
    minibatch: int

    def __post_init__(self) -> None:
        if self.kind is OpKind.OPTIMIZER:
            if self.microbatch != -1:
                raise ScheduleError("optimizer ops carry microbatch=-1")
        elif self.microbatch < 0:
            raise ScheduleError("compute ops need a non-negative microbatch id")


@dataclass(frozen=True)
class PipelineSchedule:
    """Per-stage op orderings plus scheduling-mode metadata."""

    mode: str  # "async" (PipeDream), "sync" (DAPPLE), "continuous" (serving)
    n_stages: int
    n_minibatches: int
    microbatches_per_minibatch: int
    per_stage: List[List[ScheduleOp]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in ("async", "sync", "continuous"):
            raise ScheduleError(f"unknown schedule mode {self.mode!r}")
        if len(self.per_stage) != self.n_stages:
            raise ScheduleError(
                f"schedule has {len(self.per_stage)} stage rows, expected {self.n_stages}"
            )
        self._validate_counts()
        self._validate_order()

    # -- derived quantities ----------------------------------------------

    @property
    def total_microbatches(self) -> int:
        return self.n_minibatches * self.microbatches_per_minibatch

    def weight_versions(self, stage: int) -> int:
        """Stashed weight copies a stage must keep (Section II-C).

        Asynchronous scheduling (PipeDream) stashes one version per
        in-flight minibatch — more at earlier stages; synchronous
        scheduling (DAPPLE) keeps a single version everywhere.
        """
        self._check_stage(stage)
        if self.mode in ("sync", "continuous"):
            return 1
        return self.n_stages - stage

    def max_in_flight(self, stage: int) -> int:
        """Upper bound on concurrently-held microbatch activations."""
        self._check_stage(stage)
        in_flight = 0
        worst = 0
        for op in self.per_stage[stage]:
            if op.kind is OpKind.FORWARD:
                in_flight += 1
                worst = max(worst, in_flight)
            elif op.kind is OpKind.BACKWARD:
                in_flight -= 1
        return worst

    def stage_ops(self, stage: int) -> List[ScheduleOp]:
        self._check_stage(stage)
        return self.per_stage[stage]

    def backward_drain(self, stage: int, minibatch: int) -> int:
        """Trailing backward-only run of ``minibatch`` on ``stage``.

        The number of consecutive backward ops at the end of the
        minibatch's compute window (before any optimizer step) with
        no forward interleaved.  This is the window data-parallel
        gradient bucketing can overlap all-reduce against: once the
        last forward retires, the stage only produces gradients.
        """
        self._check_stage(stage)
        ops = [
            op for op in self.per_stage[stage]
            if op.minibatch == minibatch and op.kind is not OpKind.OPTIMIZER
        ]
        if not ops:
            raise ScheduleError(
                f"minibatch {minibatch} never runs on stage {stage}")
        drain = 0
        for op in reversed(ops):
            if op.kind is not OpKind.BACKWARD:
                break
            drain += 1
        return drain

    # -- validation --------------------------------------------------------

    def _validate_counts(self) -> None:
        expected = set(range(self.total_microbatches))
        for stage, ops in enumerate(self.per_stage):
            fwds = [op.microbatch for op in ops if op.kind is OpKind.FORWARD]
            bwds = [op.microbatch for op in ops if op.kind is OpKind.BACKWARD]
            if set(fwds) != expected or len(fwds) != len(expected):
                raise ScheduleError(f"stage {stage}: forward set incomplete or duplicated")
            if self.mode == "continuous":
                # Serving never runs backward passes: each "microbatch"
                # is one continuous-batching iteration, forward-only.
                if bwds or any(op.kind is OpKind.OPTIMIZER for op in ops):
                    raise ScheduleError(
                        f"stage {stage}: continuous schedules are forward-only"
                    )
                continue
            if set(bwds) != expected or len(bwds) != len(expected):
                raise ScheduleError(f"stage {stage}: backward set incomplete or duplicated")

    def _validate_order(self) -> None:
        for stage, ops in enumerate(self.per_stage):
            seen_forward = set()
            for op in ops:
                if op.kind is OpKind.FORWARD:
                    seen_forward.add(op.microbatch)
                elif op.kind is OpKind.BACKWARD and op.microbatch not in seen_forward:
                    raise ScheduleError(
                        f"stage {stage}: backward of microbatch {op.microbatch} "
                        "precedes its forward"
                    )

    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < self.n_stages:
            raise ScheduleError(f"stage {stage} out of range")


def one_f_one_b(
    n_stages: int,
    stage: int,
    microbatch_ids: List[int],
    warmup: int,
) -> List[ScheduleOp]:
    """The 1F1B interleaving used by both PipeDream and DAPPLE.

    ``warmup`` forwards run first, then the stage alternates backward
    and forward until both directions drain.  ``minibatch`` labels are
    attached by the callers.
    """
    if warmup < 1:
        raise ScheduleError("warmup must be at least 1")
    total = len(microbatch_ids)
    warmup = min(warmup, total)
    ops: List[ScheduleOp] = []
    next_fwd = 0
    next_bwd = 0
    for _ in range(warmup):
        ops.append(ScheduleOp(OpKind.FORWARD, microbatch_ids[next_fwd], -1))
        next_fwd += 1
    while next_bwd < total:
        ops.append(ScheduleOp(OpKind.BACKWARD, microbatch_ids[next_bwd], -1))
        next_bwd += 1
        if next_fwd < total:
            ops.append(ScheduleOp(OpKind.FORWARD, microbatch_ids[next_fwd], -1))
            next_fwd += 1
    return ops


def continuous_schedule(n_stages: int, n_iterations: int) -> PipelineSchedule:
    """Forward-only schedule for continuous-batching inference.

    Each "microbatch" id is one serving iteration: every stage runs the
    iterations in order, and which requests prefill or decode inside an
    iteration is the serving scheduler's concern, not the schedule's.
    """
    if n_stages < 1:
        raise ScheduleError("continuous schedules need at least one stage")
    if n_iterations < 1:
        raise ScheduleError("continuous schedules need at least one iteration")
    per_stage = [
        [ScheduleOp(OpKind.FORWARD, it, 0) for it in range(n_iterations)]
        for _ in range(n_stages)
    ]
    return PipelineSchedule(
        mode="continuous",
        n_stages=n_stages,
        n_minibatches=1,
        microbatches_per_minibatch=n_iterations,
        per_stage=per_stage,
    )


def relabel_minibatch(
    ops: List[ScheduleOp], microbatches_per_minibatch: int
) -> List[ScheduleOp]:
    """Attach minibatch ids derived from global microbatch ids."""
    relabeled = []
    for op in ops:
        if op.kind is OpKind.OPTIMIZER:
            relabeled.append(op)
        else:
            relabeled.append(
                ScheduleOp(op.kind, op.microbatch, op.microbatch // microbatches_per_minibatch)
            )
    return relabeled
