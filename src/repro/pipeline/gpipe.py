"""GPipe-style synchronous pipeline schedule.

GPipe runs *all* forwards of a minibatch before any backward (no
early-backward interleaving), then drains backwards and applies the
optimizer — synchronous like DAPPLE but with a deeper activation
high-water mark: every stage holds all in-flight microbatches at the
forward/backward turning point.

The paper's Section III-E notes MPress "is general and can be applied
to other inter-operator training systems such as GPipe"; this module
provides that integration point — the schedule plugs into the same
executor/planner machinery as PipeDream and DAPPLE.
"""

from __future__ import annotations

from typing import List

from repro.errors import ScheduleError
from repro.pipeline.schedule import (
    OpKind,
    PipelineSchedule,
    ScheduleOp,
    relabel_minibatch,
)


def gpipe_schedule(
    n_stages: int,
    n_minibatches: int,
    microbatches_per_minibatch: int,
) -> PipelineSchedule:
    """Build the all-forward-then-all-backward schedule.

    >>> sched = gpipe_schedule(3, 1, 4)
    >>> sched.max_in_flight(0)
    4
    >>> sched.weight_versions(0)
    1
    """
    if n_stages < 1 or n_minibatches < 1 or microbatches_per_minibatch < 1:
        raise ScheduleError("stage/minibatch/microbatch counts must be positive")

    per_stage: List[List[ScheduleOp]] = []
    for _stage in range(n_stages):
        ops: List[ScheduleOp] = []
        for minibatch in range(n_minibatches):
            ids = [
                minibatch * microbatches_per_minibatch + i
                for i in range(microbatches_per_minibatch)
            ]
            ops.extend(ScheduleOp(OpKind.FORWARD, mb, -1) for mb in ids)
            ops.extend(ScheduleOp(OpKind.BACKWARD, mb, -1) for mb in reversed(ids))
            ops.append(ScheduleOp(OpKind.OPTIMIZER, -1, minibatch))
        per_stage.append(relabel_minibatch(ops, microbatches_per_minibatch))

    return PipelineSchedule(
        mode="sync",
        n_stages=n_stages,
        n_minibatches=n_minibatches,
        microbatches_per_minibatch=microbatches_per_minibatch,
        per_stage=per_stage,
    )
