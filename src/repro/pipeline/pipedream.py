"""PipeDream-style asynchronous pipeline schedule (Figure 1a).

Minibatches are *not* serialized: the forward of minibatch ``k+1``
overlaps the backward of minibatch ``k``, so the pipeline never
drains.  The price is weight stashing — stage ``s`` keeps
``n_stages - s`` parameter versions to keep gradient computation
consistent (Section II-C), which is why PipeDream sustains smaller
models than DAPPLE at equal hardware.
"""

from __future__ import annotations

from typing import List

from repro.errors import ScheduleError
from repro.pipeline.schedule import (
    OpKind,
    PipelineSchedule,
    ScheduleOp,
    one_f_one_b,
    relabel_minibatch,
)


def pipedream_schedule(
    n_stages: int,
    n_minibatches: int,
    microbatches_per_minibatch: int,
) -> PipelineSchedule:
    """Build the continuous 1F1B schedule over all minibatches.

    >>> sched = pipedream_schedule(3, 2, 3)
    >>> sched.weight_versions(0)
    3
    >>> sched.max_in_flight(0) > sched.max_in_flight(2)
    True
    """
    if n_stages < 1 or n_minibatches < 1 or microbatches_per_minibatch < 1:
        raise ScheduleError("stage/minibatch/microbatch counts must be positive")

    all_ids = list(range(n_minibatches * microbatches_per_minibatch))
    minibatch_last = {
        (k + 1) * microbatches_per_minibatch - 1: k for k in range(n_minibatches)
    }

    per_stage: List[List[ScheduleOp]] = []
    for stage in range(n_stages):
        warmup = n_stages - stage
        ops = one_f_one_b(n_stages, stage, all_ids, warmup)
        with_opt: List[ScheduleOp] = []
        for op in ops:
            with_opt.append(op)
            # Apply the optimizer as soon as a minibatch's last
            # backward finishes on this stage (no global flush).
            if op.kind is OpKind.BACKWARD and op.microbatch in minibatch_last:
                with_opt.append(
                    ScheduleOp(OpKind.OPTIMIZER, -1, minibatch_last[op.microbatch])
                )
        per_stage.append(relabel_minibatch(with_opt, microbatches_per_minibatch))

    return PipelineSchedule(
        mode="async",
        n_stages=n_stages,
        n_minibatches=n_minibatches,
        microbatches_per_minibatch=microbatches_per_minibatch,
        per_stage=per_stage,
    )
