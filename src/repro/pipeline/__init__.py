"""Inter-operator (pipeline) parallelism: partitioning and schedules."""

from repro.pipeline.stage import Stage, StagePlan
from repro.pipeline.partition import (
    partition_computation_balanced,
    partition_memory_balanced,
    partition_model,
)
from repro.pipeline.schedule import (
    PipelineSchedule,
    ScheduleOp,
    OpKind,
    continuous_schedule,
)
from repro.pipeline.pipedream import pipedream_schedule
from repro.pipeline.dapple import dapple_schedule
from repro.pipeline.gpipe import gpipe_schedule

__all__ = [
    "Stage",
    "StagePlan",
    "partition_computation_balanced",
    "partition_memory_balanced",
    "partition_model",
    "PipelineSchedule",
    "ScheduleOp",
    "OpKind",
    "continuous_schedule",
    "pipedream_schedule",
    "dapple_schedule",
    "gpipe_schedule",
]
