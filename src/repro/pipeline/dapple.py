"""DAPPLE-style synchronous pipeline schedule (Figure 1b).

Each minibatch runs an early-backward 1F1B wave, fully drains, then
every stage applies its optimizer before the next minibatch enters —
the vertical bold line in the paper's Figure 1(b).  Only one weight
version is ever live, so DAPPLE sustains larger models than
PipeDream at equal hardware.
"""

from __future__ import annotations

from typing import List

from repro.errors import ScheduleError
from repro.pipeline.schedule import (
    OpKind,
    PipelineSchedule,
    ScheduleOp,
    one_f_one_b,
    relabel_minibatch,
)


def dapple_schedule(
    n_stages: int,
    n_minibatches: int,
    microbatches_per_minibatch: int,
) -> PipelineSchedule:
    """Build the per-minibatch drained 1F1B schedule.

    >>> sched = dapple_schedule(3, 2, 6)
    >>> sched.weight_versions(0)
    1
    >>> sched.max_in_flight(0)
    3
    """
    if n_stages < 1 or n_minibatches < 1 or microbatches_per_minibatch < 1:
        raise ScheduleError("stage/minibatch/microbatch counts must be positive")

    per_stage: List[List[ScheduleOp]] = []
    for stage in range(n_stages):
        ops: List[ScheduleOp] = []
        for minibatch in range(n_minibatches):
            ids = [
                minibatch * microbatches_per_minibatch + i
                for i in range(microbatches_per_minibatch)
            ]
            warmup = min(microbatches_per_minibatch, n_stages - stage)
            ops.extend(one_f_one_b(n_stages, stage, ids, warmup))
            ops.append(ScheduleOp(OpKind.OPTIMIZER, -1, minibatch))
        per_stage.append(relabel_minibatch(ops, microbatches_per_minibatch))

    return PipelineSchedule(
        mode="sync",
        n_stages=n_stages,
        n_minibatches=n_minibatches,
        microbatches_per_minibatch=microbatches_per_minibatch,
        per_stage=per_stage,
    )
