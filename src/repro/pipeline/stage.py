"""Pipeline stages: contiguous slices of a model's layer list.

A :class:`StagePlan` is the output of partitioning (Section II-C):
stage ``s`` owns layers ``[start, end)`` of the model and is later
mapped to a GPU device by the device-mapping search (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import PartitionError
from repro.models import costs
from repro.models.layers import LayerSpec, ModelSpec


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: a contiguous run of model layers."""

    stage_id: int
    layers: List[LayerSpec]

    def __post_init__(self) -> None:
        if not self.layers:
            raise PartitionError(f"stage {self.stage_id} is empty")

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def params(self) -> int:
        return sum(layer.params for layer in self.layers)

    def forward_flops(self, microbatch: int) -> float:
        return sum(layer.forward_flops(microbatch) for layer in self.layers)

    def backward_flops(self, microbatch: int) -> float:
        return sum(layer.backward_flops(microbatch) for layer in self.layers)

    def activation_bytes(self, microbatch: int, bytes_per_element: int = 2) -> int:
        """Saved activations for one in-flight microbatch on this stage."""
        return sum(
            layer.activation_bytes(microbatch, bytes_per_element) for layer in self.layers
        )

    def boundary_bytes(self, microbatch: int, bytes_per_element: int = 2) -> int:
        """Output tensor shipped to the next stage."""
        return self.layers[-1].boundary_bytes(microbatch, bytes_per_element)

    def model_state_bytes(self, weight_versions: int = 1) -> int:
        """Params (stashed ``weight_versions`` times), grads, optimizer."""
        if weight_versions < 1:
            raise PartitionError("weight_versions must be >= 1")
        return self.params * (
            costs.PARAM_BYTES * weight_versions + costs.GRAD_BYTES + costs.OPTIMIZER_BYTES
        )


@dataclass(frozen=True)
class StagePlan:
    """A full partition of one model into pipeline stages."""

    model: ModelSpec
    stages: List[Stage]

    def __post_init__(self) -> None:
        expected = 0
        for stage in self.stages:
            for layer in stage.layers:
                if layer.index != expected:
                    raise PartitionError(
                        f"stage {stage.stage_id}: layer {layer.index} out of order "
                        f"(expected {expected})"
                    )
                expected += 1
        if expected != self.model.n_layers:
            raise PartitionError(
                f"partition covers {expected} layers, model has {self.model.n_layers}"
            )

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    def stage(self, stage_id: int) -> Stage:
        if not 0 <= stage_id < self.n_stages:
            raise PartitionError(f"stage id {stage_id} out of range")
        return self.stages[stage_id]

    def max_forward_flops(self, microbatch: int) -> float:
        return max(stage.forward_flops(microbatch) for stage in self.stages)
