"""The sweep runtime: fan tasks over a process pool, cache results.

``SweepRuntime.run(tasks)`` resolves every task, in three layers:

1. **cache** — tasks whose content address is already on disk return
   instantly, without touching a worker;
2. **pool** — remaining tasks fan out over ``jobs`` worker processes
   (``jobs=1`` runs inline, no pool, for determinism and debugging);
3. **retry with exclusion** — a task whose worker raised (or died and
   broke the pool) is retried in a fresh pool generation up to
   ``retries`` times; a task that exhausts its retries is *excluded*
   from the pool and attempted once inline in the parent, so one
   poisoned config can never wedge the whole sweep.  Persistent
   errors are recorded per-task, not raised.

Results come back **in submission order** regardless of completion
order, so a sweep's output is byte-identical whatever ``jobs`` is.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.task import SimTask, execute_task


@dataclass(frozen=True)
class ProgressEvent:
    """One progress tick, emitted as each task resolves."""

    done: int
    total: int
    label: str
    source: str            # "cache" | "pool" | "inline"
    ok: bool
    elapsed: float

    def line(self) -> str:
        status = "" if self.ok else " FAILED"
        return (f"[{self.done}/{self.total}] {self.source:<6} "
                f"{self.label}{status} ({self.elapsed:.1f}s)")


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of one sweep execution."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    retries: int = 2
    progress: Optional[Callable[[ProgressEvent], None]] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError("runtime jobs must be >= 1")
        if self.retries < 0:
            raise ConfigurationError("runtime retries must be >= 0")


@dataclass
class TaskOutcome:
    """How one task resolved."""

    task: SimTask
    record: Optional[Dict]
    source: str            # "cache" | "pool" | "inline"
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.record is not None


@dataclass
class RuntimeReport:
    """Everything one ``run`` produced, in submission order."""

    outcomes: List[TaskOutcome]
    elapsed: float
    pool_generations: int = 1

    def records(self) -> List[Optional[Dict]]:
        return [outcome.record for outcome in self.outcomes]

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and o.source != "cache")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "cache")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def retried(self) -> int:
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def tasks_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed

    def summary(self) -> str:
        return (f"tasks={len(self.outcomes)} executed={self.executed} "
                f"cached={self.cached} failed={self.failed} "
                f"retried={self.retried} elapsed={self.elapsed:.2f}s "
                f"({self.tasks_per_second:.2f} tasks/s)")


class SweepRuntime:
    """Executes independent simulation tasks, possibly in parallel."""

    def __init__(self, config: Optional[RuntimeConfig] = None):
        self.config = config if config is not None else RuntimeConfig()

    def run(self, tasks: Sequence[SimTask]) -> RuntimeReport:
        started = time.time()
        tasks = list(tasks)
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        done_count = 0

        def emit(index: int, outcome: TaskOutcome) -> None:
            nonlocal done_count
            outcomes[index] = outcome
            done_count += 1
            if self.config.progress is not None:
                self.config.progress(ProgressEvent(
                    done=done_count,
                    total=len(tasks),
                    label=outcome.task.label,
                    source=outcome.source,
                    ok=outcome.ok,
                    elapsed=time.time() - started,
                ))

        # Layer 1: cache hits.
        cache = self.config.cache
        keys: List[Optional[str]] = [None] * len(tasks)
        pending: List[int] = []
        for index, task in enumerate(tasks):
            if cache is not None:
                keys[index] = task.cache_key()
                record = cache.get(keys[index])
                if record is not None:
                    # The stored label belongs to whichever sweep
                    # produced the entry; report the caller's.
                    record = dict(record, label=task.label)
                    emit(index, TaskOutcome(task=task, record=record,
                                            source="cache"))
                    continue
            pending.append(index)

        # Layers 2 and 3: execute the misses.
        generations = 1
        if pending:
            if self.config.jobs == 1:
                self._run_inline(tasks, keys, pending, emit)
            else:
                generations = self._run_pool(tasks, keys, pending, emit)

        return RuntimeReport(
            outcomes=[o for o in outcomes if o is not None],
            elapsed=time.time() - started,
            pool_generations=generations,
        )

    # -- execution layers -------------------------------------------------

    def _store(self, index: int, keys, record: Dict) -> None:
        if self.config.cache is not None and keys[index] is not None:
            self.config.cache.put(keys[index], record)

    def _run_inline(self, tasks, keys, pending: List[int], emit,
                    source: str = "inline",
                    max_attempts: Optional[int] = None,
                    prior_attempts: Optional[Dict[int, int]] = None) -> None:
        """Serial fallback: run each pending task in this process."""
        budget = (max_attempts if max_attempts is not None
                  else self.config.retries + 1)
        for index in pending:
            task = tasks[index]
            attempts = 0
            record = None
            error = None
            while record is None and attempts < budget:
                attempts += 1
                try:
                    record = execute_task(task)
                except Exception as exc:   # noqa: BLE001 — recorded per-task
                    error = f"{type(exc).__name__}: {exc}"
            if record is not None:
                self._store(index, keys, record)
            total = attempts + (prior_attempts or {}).get(index, 0)
            emit(index, TaskOutcome(task=task, record=record, source=source,
                                    attempts=total, error=error))

    def _run_pool(self, tasks, keys, pending: List[int], emit) -> int:
        """Fan pending tasks over worker processes.

        Each iteration of the outer loop is one *pool generation*: a
        broken pool (a worker died mid-task) discards the generation,
        bumps the attempt count of every unfinished task, and starts
        a fresh pool with the survivors.  Tasks whose attempts exceed
        ``retries`` fall through to inline execution — the exclusion
        that keeps a crashing config from looping forever.
        """
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:                      # pragma: no cover — non-POSIX
            context = multiprocessing.get_context()

        attempts: Dict[int, int] = {index: 0 for index in pending}
        remaining = list(pending)
        generations = 0
        while remaining:
            runnable = [i for i in remaining
                        if attempts[i] <= self.config.retries]
            excluded = [i for i in remaining if i not in runnable]
            if excluded:
                # Last resort for tasks that exhausted their pool
                # retries (crash suspects or persistent failures):
                # one attempt in the parent, where an ordinary
                # exception is catchable and only a genuine
                # interpreter abort can take the sweep down.
                self._run_inline(tasks, keys, excluded, emit,
                                 max_attempts=1, prior_attempts=attempts)
            remaining = runnable
            if not remaining:
                break
            generations += 1
            workers = min(self.config.jobs, len(runnable))
            finished: List[int] = []
            broke = False
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=context) as pool:
                futures = {
                    pool.submit(execute_task, tasks[index]): index
                    for index in runnable
                }
                not_done = set(futures)
                while not_done and not broke:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        try:
                            record = future.result()
                        except BrokenProcessPool:
                            broke = True
                            continue
                        except Exception:  # noqa: BLE001 — retried below
                            continue
                        finished.append(index)
                        self._store(index, keys, record)
                        emit(index, TaskOutcome(
                            task=tasks[index], record=record, source="pool",
                            attempts=attempts[index] + 1,
                        ))
            # A broken pool cannot say which task killed it, so every
            # unfinished task of the generation — crashed, errored, or
            # merely queued behind the crash — is charged one attempt;
            # innocent tasks simply succeed in the next generation.
            remaining = [i for i in runnable if i not in finished]
            for index in remaining:
                attempts[index] += 1
        return max(1, generations)


def run_tasks(
    tasks: Sequence[SimTask],
    runtime: Optional[SweepRuntime] = None,
) -> RuntimeReport:
    """Run tasks through ``runtime`` (default: serial, uncached)."""
    if runtime is None:
        runtime = SweepRuntime()
    return runtime.run(tasks)
