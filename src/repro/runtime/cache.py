"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON file per cache
key, fanned out over 256 buckets so a directory never accumulates
millions of entries.  Entries are written atomically (temp file +
rename), so a sweep killed mid-write can never leave a truncated
entry that later reads as a hit.

The key is the SHA-256 of the task's canonical encoding (see
:meth:`repro.runtime.task.SimTask.cache_key`), which already folds in
the canonical-format version and the runtime's code salt — a cache
directory can therefore be shared between code versions: stale
entries are simply never addressed again.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

ENTRY_VERSION = 1


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache directory."""

    root: str
    entries: int
    total_bytes: int
    shards: int = 0

    def summary(self) -> str:
        mib = self.total_bytes / 2**20
        return f"{self.root}: {self.entries} entries, {mib:.2f} MiB"

    def to_dict(self) -> Dict:
        """Machine-readable form (``repro cache stats --json``)."""
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "shards": self.shards,
        }


class ResultCache:
    """Read/write content-addressed simulation records.

    ``get``/``put`` also maintain per-instance hit/miss counters so a
    sweep can report its cache effectiveness.
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.hits = 0
        self.misses = 0

    # -- addressing -------------------------------------------------------

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- read/write -------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The cached record for ``key``, or None on miss.

        Unreadable or corrupt entries count as misses: the runtime
        will recompute and overwrite them.
        """
        try:
            with open(self.path_for(key)) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("version") != ENTRY_VERSION:
            self.misses += 1
            return None
        record = entry.get("record")
        if not isinstance(record, dict):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict) -> None:
        """Persist ``record`` under ``key`` atomically."""
        path = self.path_for(key)
        bucket = os.path.dirname(path)
        os.makedirs(bucket, exist_ok=True)
        entry = {"version": ENTRY_VERSION, "key": key, "record": record}
        fd, tmp = tempfile.mkstemp(dir=bucket, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- inspection / eviction -------------------------------------------

    def keys(self) -> List[str]:
        """Every key currently cached (sorted)."""
        found: List[str] = []
        for path in self._entry_paths():
            found.append(os.path.basename(path)[: -len(".json")])
        return sorted(found)

    def stats(self) -> CacheStats:
        entries = 0
        total = 0
        shards = set()
        for path in self._entry_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
            shards.add(os.path.basename(os.path.dirname(path)))
        return CacheStats(
            root=self.root, entries=entries, total_bytes=total, shards=len(shards)
        )

    def stats_dict(self) -> Dict:
        """Directory snapshot plus this instance's hit/miss counters."""
        snapshot = self.stats().to_dict()
        snapshot["hits"] = self.hits
        snapshot["misses"] = self.misses
        return snapshot

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def _entry_paths(self) -> List[str]:
        paths: List[str] = []
        if not os.path.isdir(self.root):
            return paths
        for bucket in sorted(os.listdir(self.root)):
            bucket_path = os.path.join(self.root, bucket)
            if not os.path.isdir(bucket_path):
                continue
            for name in sorted(os.listdir(bucket_path)):
                if name.endswith(".json"):
                    paths.append(os.path.join(bucket_path, name))
        return paths
