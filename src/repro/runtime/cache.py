"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON file per cache
key, fanned out over 256 buckets so a directory never accumulates
millions of entries.  Entries are written atomically (temp file +
rename), so a sweep killed mid-write can never leave a truncated
entry that later reads as a hit.

The key is the SHA-256 of the task's canonical encoding (see
:meth:`repro.runtime.task.SimTask.cache_key`), which already folds in
the canonical-format version and the runtime's code salt — a cache
directory can therefore be shared between code versions: stale
entries are simply never addressed again.

**Eviction.**  A cache built with ``max_bytes`` enforces an LRU size
cap: every hit bumps the entry's mtime (strictly monotonically within
a process), and a ``put`` that pushes the directory over the cap
evicts least-recently-used entries until it fits again.  The entry
just written is never evicted by its own ``put``, so the cap is soft
by at most one record.  Evictions are counted cumulatively in
``<root>/_meta.json`` so ``repro cache stats --json`` reports them
across processes; hit/miss counters stay per-instance (a shared
directory has no single hit-rate).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

ENTRY_VERSION = 1

# Root-level sidecar holding cumulative counters that must survive the
# process (eviction totals).  It lives outside the two-hex-char bucket
# directories, so entry scans never pick it up.
META_NAME = "_meta.json"


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a cache directory."""

    root: str
    entries: int
    total_bytes: int
    shards: int = 0
    evictions: int = 0

    def summary(self) -> str:
        mib = self.total_bytes / 2**20
        return f"{self.root}: {self.entries} entries, {mib:.2f} MiB"

    def to_dict(self) -> Dict:
        """Machine-readable form (``repro cache stats --json``)."""
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "shards": self.shards,
            "evictions": self.evictions,
        }


class ResultCache:
    """Read/write content-addressed simulation records.

    ``get``/``put`` also maintain per-instance hit/miss counters so a
    sweep can report its cache effectiveness.  With ``max_bytes`` set
    the cache evicts least-recently-used entries on ``put`` (see the
    module docstring).  All mutating paths are thread-safe: the serve
    scheduler shares one instance across its dispatcher threads.
    """

    def __init__(self, root: str, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError("cache max_bytes must be positive")
        self.root = str(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()
        # Strictly increasing mtime source: filesystem clocks can be
        # coarser than a cache hit, and LRU ties must break the same
        # way every run.
        self._last_touch_ns = 0

    # -- addressing -------------------------------------------------------

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- read/write -------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The cached record for ``key``, or None on miss.

        Unreadable or corrupt entries count as misses: the runtime
        will recompute and overwrite them.  A hit marks the entry
        most-recently-used.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            with self._lock:
                self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("version") != ENTRY_VERSION:
            with self._lock:
                self.misses += 1
            return None
        record = entry.get("record")
        if not isinstance(record, dict):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
            self._touch(path)
        return record

    def put(self, key: str, record: Dict) -> None:
        """Persist ``record`` under ``key`` atomically.

        With ``max_bytes`` set, evicts LRU entries afterwards until
        the directory fits the cap again (never the entry just
        written).
        """
        path = self.path_for(key)
        bucket = os.path.dirname(path)
        os.makedirs(bucket, exist_ok=True)
        entry = {"version": ENTRY_VERSION, "key": key, "record": record}
        fd, tmp = tempfile.mkstemp(dir=bucket, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self._touch(path)
            if self.max_bytes is not None:
                self._evict_to_cap(protect=path)

    # -- recency / eviction ----------------------------------------------

    def _touch(self, path: str) -> None:
        """Bump ``path``'s mtime, strictly above every previous touch."""
        now = time.time_ns()
        self._last_touch_ns = max(now, self._last_touch_ns + 1)
        try:
            os.utime(path, ns=(self._last_touch_ns, self._last_touch_ns))
        except OSError:
            pass

    def _evict_to_cap(self, protect: Optional[str] = None) -> int:
        """Evict LRU entries until ``total_bytes <= max_bytes``.

        Returns how many entries were removed.  ``protect`` (a path)
        is never evicted — the record a ``put`` just stored must
        survive its own eviction pass.
        """
        aged: List[Tuple[int, str, str, int]] = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            total += stat.st_size
            aged.append((stat.st_mtime_ns, os.path.basename(path), path,
                         stat.st_size))
        removed = 0
        if self.max_bytes is None or total <= self.max_bytes:
            return removed
        aged.sort()                      # oldest first; key breaks ties
        for _mtime, _name, path, size in aged:
            if total <= self.max_bytes:
                break
            if path == protect:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        if removed:
            self.evictions += removed
            self._bump_meta_evictions(removed)
        return removed

    def evict_to(self, max_bytes: int) -> int:
        """One-shot LRU eviction down to ``max_bytes`` (CLI/admin)."""
        with self._lock:
            saved = self.max_bytes
            self.max_bytes = max_bytes
            try:
                return self._evict_to_cap()
            finally:
                self.max_bytes = saved

    # -- persistent counters ----------------------------------------------

    def _meta_path(self) -> str:
        return os.path.join(self.root, META_NAME)

    def _read_meta(self) -> Dict:
        try:
            with open(self._meta_path()) as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        return meta if isinstance(meta, dict) else {}

    def _bump_meta_evictions(self, count: int) -> None:
        meta = self._read_meta()
        meta["evictions"] = int(meta.get("evictions", 0)) + count
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(meta, handle, sort_keys=True)
            os.replace(tmp, self._meta_path())
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def total_evictions(self) -> int:
        """Cumulative evictions over the directory's lifetime."""
        return int(self._read_meta().get("evictions", 0))

    # -- inspection / eviction -------------------------------------------

    def keys(self) -> List[str]:
        """Every key currently cached (sorted)."""
        found: List[str] = []
        for path in self._entry_paths():
            found.append(os.path.basename(path)[: -len(".json")])
        return sorted(found)

    def total_bytes(self) -> int:
        total = 0
        for path in self._entry_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
        return total

    def stats(self) -> CacheStats:
        entries = 0
        total = 0
        shards = set()
        for path in self._entry_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
            shards.add(os.path.basename(os.path.dirname(path)))
        return CacheStats(
            root=self.root, entries=entries, total_bytes=total,
            shards=len(shards), evictions=self.total_evictions(),
        )

    def stats_dict(self) -> Dict:
        """Directory snapshot plus this instance's hit/miss counters."""
        snapshot = self.stats().to_dict()
        with self._lock:
            hits, misses = self.hits, self.misses
        lookups = hits + misses
        snapshot["hits"] = hits
        snapshot["misses"] = misses
        snapshot["hit_rate"] = (hits / lookups) if lookups else 0.0
        snapshot["max_bytes"] = self.max_bytes
        return snapshot

    def clear(self, keep_newer_than: Optional[float] = None) -> int:
        """Delete entries; returns how many were removed.

        ``keep_newer_than`` (seconds) spares entries touched within
        that window — ``repro cache clear --keep-newer-than 3600``
        trims history without cold-starting the jobs of the last hour.
        A full clear also resets the persistent eviction counter.
        """
        cutoff_ns = None
        if keep_newer_than is not None:
            if keep_newer_than < 0:
                from repro.errors import ConfigurationError

                raise ConfigurationError(
                    "cache clear keep_newer_than must be >= 0")
            cutoff_ns = time.time_ns() - int(keep_newer_than * 1e9)
        removed = 0
        for path in self._entry_paths():
            if cutoff_ns is not None:
                try:
                    if os.stat(path).st_mtime_ns >= cutoff_ns:
                        continue
                except OSError:
                    continue
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        if cutoff_ns is None:
            try:
                os.unlink(self._meta_path())
            except OSError:
                pass
        return removed

    def _entry_paths(self) -> List[str]:
        paths: List[str] = []
        if not os.path.isdir(self.root):
            return paths
        for bucket in sorted(os.listdir(self.root)):
            bucket_path = os.path.join(self.root, bucket)
            if not os.path.isdir(bucket_path):
                continue
            for name in sorted(os.listdir(bucket_path)):
                if name.endswith(".json"):
                    paths.append(os.path.join(bucket_path, name))
        return paths
