"""Sweep tasks: one content-addressed simulation unit.

A :class:`SimTask` is the runtime's unit of work — everything one
simulation needs, as picklable data (no callables), so it can cross a
process boundary and be hashed into a cache key.  Three shapes cover
every sweep in the repository:

* **system runs** — ``run_system(job, system)``, the Figures 7/8
  columns;
* **planner-config runs** — ``MPress(job, config).run()``, the
  Figure 9 ablation variants;
* **plan replays** — ``simulate(job, plan, faults=...)``, the
  resilience campaigns that re-execute a fixed plan under faults;
* **ZeRO baselines** — the analytic ``run_zero`` models.

Executing a task produces a plain-JSON *record* (metrics, per-GPU
peaks, the plan payload, a trace digest) rather than the live
``SimulationResult`` — records are small, picklable, cacheable, and
deterministic, which is what makes content-addressed caching and
golden-trace regression possible.

The simulator behind :func:`execute_task` lowers each run through the
instruction IR (``repro.sim.lowering`` → ``repro.sim.interpreter``;
see ``docs/architecture.md``).  That pipeline replays the exact same
event stream as the pre-IR executor, so cache keys, record payloads,
and trace digests are unchanged — ``RUNTIME_CACHE_SALT`` deliberately
stays at its pre-refactor value and shared cache directories remain
warm across the split.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.autoplan.search import AutoPlanConfig
from repro.core.plan import MemorySavingPlan
from repro.core.planner import PlannerConfig
from repro.core.serialization import (
    canonical_payload,
    config_digest,
    plan_to_dict,
)
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSchedule
from repro.hardware.cluster import Cluster
from repro.inference.workload import InferenceConfig
from repro.job import TrainingJob
from repro.parallel.cluster import ClusterConfig
from repro.parallel.hybrid import HybridConfig

# Code-relevant version salt: bump whenever simulator/planner
# semantics change, so stale cache entries can never satisfy a sweep
# run against newer code (see docs/runtime.md).
RUNTIME_CACHE_SALT = "repro-runtime-1"

# Schema version of the record dicts below.
RECORD_VERSION = 1

_SYSTEMS = ("none", "recomputation", "gpu-cpu-swap", "d2d-only", "mpress")
_ZERO_SYSTEMS = ("zero-offload", "zero-infinity")


@dataclass(frozen=True)
class SimTask:
    """One independent simulation in a sweep.

    ``label`` is cosmetic (progress lines, tables) and excluded from
    the cache key; every other field is semantic.  When ``plan`` is
    set the task *replays* that plan through the executor instead of
    planning from scratch; when ``config`` is set the task runs the
    MPress facade under that explicit planner configuration.  When
    ``hybrid`` is set the task runs ``run_hybrid`` — ``system``
    names the per-replica memory system and the hybrid layer adds
    gradient synchronisation on top.  When ``cluster`` is set (with a
    ``cluster_config``) the task runs ``run_cluster`` over that
    multi-server fabric instead of ``job.server``.  When ``autoplan``
    is set the task is a *shape search*: ``run_cluster`` picks the
    TP x DP x PP shape itself over ``cluster`` (no ``cluster_config``
    — the search's whole point is that none was chosen).  When
    ``inference`` is set the task simulates an LLM *serving* episode
    (``repro.inference``) on ``job.model`` / ``job.server`` instead of
    a training run; ``system`` is cosmetic there and the serving
    config's ``kv_swap`` selects the memory policy.
    """

    label: str
    job: TrainingJob
    system: str = "mpress"
    config: Optional[PlannerConfig] = None
    faults: Optional[FaultSchedule] = None
    plan: Optional[MemorySavingPlan] = None
    record_trace: bool = True
    hybrid: Optional[HybridConfig] = None
    cluster: Optional[Cluster] = None
    cluster_config: Optional[ClusterConfig] = None
    autoplan: Optional[AutoPlanConfig] = None
    inference: Optional[InferenceConfig] = None

    def __post_init__(self) -> None:
        known = _SYSTEMS + _ZERO_SYSTEMS
        if self.system not in known:
            raise ConfigurationError(
                f"unknown sweep system {self.system!r}; options: {sorted(known)}"
            )
        if self.system in _ZERO_SYSTEMS and (
            self.config is not None or self.plan is not None
        ):
            raise ConfigurationError(
                "ZeRO tasks take no planner config or plan"
            )
        if self.hybrid is not None:
            if self.system not in _SYSTEMS:
                raise ConfigurationError(
                    "hybrid tasks need a pipeline system, not "
                    f"{self.system!r}"
                )
            if self.config is not None or self.plan is not None \
                    or self.faults is not None:
                raise ConfigurationError(
                    "hybrid tasks take no planner config, plan, or faults"
                )
        if self.autoplan is not None:
            if self.cluster is None:
                raise ConfigurationError(
                    "autoplan tasks need a Cluster (the shape search space)"
                )
            if self.cluster_config is not None:
                raise ConfigurationError(
                    "autoplan tasks pick the shape themselves; drop the "
                    "explicit ClusterConfig"
                )
        elif (self.cluster is None) != (self.cluster_config is None):
            raise ConfigurationError(
                "cluster tasks need both a Cluster and a ClusterConfig"
            )
        if self.cluster is not None:
            if self.system not in _SYSTEMS:
                raise ConfigurationError(
                    "cluster tasks need a pipeline system, not "
                    f"{self.system!r}"
                )
            if self.hybrid is not None or self.config is not None \
                    or self.plan is not None or self.faults is not None:
                raise ConfigurationError(
                    "cluster tasks take no hybrid config, planner config, "
                    "plan, or faults"
                )
        if self.inference is not None:
            if self.system not in _SYSTEMS:
                raise ConfigurationError(
                    "inference tasks need a pipeline system, not "
                    f"{self.system!r}"
                )
            if (self.config is not None or self.plan is not None
                    or self.faults is not None or self.hybrid is not None
                    or self.cluster is not None or self.autoplan is not None):
                raise ConfigurationError(
                    "inference tasks take no planner config, plan, faults, "
                    "hybrid, cluster, or autoplan settings"
                )

    @property
    def is_zero(self) -> bool:
        return self.system in _ZERO_SYSTEMS

    def key_payload(self) -> Dict:
        """The semantic content hashed into the cache key.

        The ``hybrid`` key is only present for hybrid tasks, so the
        payloads — and therefore the content addresses — of every
        pre-hybrid task are byte-identical to what they always were
        and shared cache directories stay warm.

        Execution strategy is deliberately absent: the fast-path tape
        interpreter and the reference interpreter produce bit-identical
        records (docs/fastpath.md, tests/test_fastpath_equivalence.py),
        so fast-path results share cache entries with full simulations
        and a cache warmed by either path serves both.
        """
        payload = {
            "job": canonical_payload(self.job),
            "system": self.system,
            "config": canonical_payload(self.config),
            "faults": canonical_payload(self.faults),
            "plan": (
                canonical_payload(plan_to_dict(self.plan))
                if self.plan is not None else None
            ),
        }
        if self.hybrid is not None:
            payload["hybrid"] = canonical_payload(self.hybrid)
        if self.cluster is not None:
            # Same gating as ``hybrid``: only cluster tasks carry these
            # keys, so every single-server payload stays byte-identical.
            payload["cluster"] = canonical_payload(self.cluster)
            payload["cluster_config"] = canonical_payload(self.cluster_config)
        if self.autoplan is not None:
            # Gated like the keys above: only shape-search tasks carry
            # it, so every pre-autoplan content address is unchanged.
            payload["autoplan"] = canonical_payload(self.autoplan)
        if self.inference is not None:
            # Gated: only serving tasks carry the key, so every
            # training-task content address is unchanged.
            payload["inference"] = canonical_payload(self.inference)
        return payload

    def cache_key(self) -> str:
        """Content address of this task's result."""
        return config_digest(self.key_payload(), salt=RUNTIME_CACHE_SALT)


def trace_digest(trace) -> str:
    """SHA-256 of the chrome-trace lowering of a simulation trace.

    Byte-identical re-simulation implies equal digests; goldens and
    cache records store the digest instead of the (large) trace.
    """
    from repro.sim.chrome_trace import trace_to_events

    text = json.dumps(
        trace_to_events(trace), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def execute_task(task: SimTask) -> Dict:
    """Run one task to completion and lower the outcome to a record.

    This is the function sweep workers execute; everything it returns
    must be plain JSON so the result cache can persist it verbatim.
    """
    if task.inference is not None:
        return _execute_inference(task)
    if task.is_zero:
        return _execute_zero(task)
    if task.autoplan is not None:
        return _execute_autoplan(task)
    if task.cluster is not None:
        return _execute_cluster(task)
    if task.hybrid is not None:
        return _execute_hybrid(task)
    if task.plan is not None:
        from repro.sim.executor import simulate

        simulation = simulate(
            task.job, task.plan, strict=True, faults=task.faults
        )
        return _simulation_record(task, simulation, plan=task.plan,
                                  feasible=None)
    if task.config is not None:
        from repro.core.mpress import MPress

        result = MPress(task.job, task.config, faults=task.faults).run()
    else:
        from repro.core.mpress import run_system

        result = run_system(task.job, task.system, faults=task.faults)
    return _simulation_record(
        task,
        result.simulation,
        plan=result.plan,
        feasible=result.planner_report.feasible,
    )


def _simulation_record(task: SimTask, simulation, plan, feasible) -> Dict:
    record = {
        "version": RECORD_VERSION,
        "label": task.label,
        "system": task.system,
        "ok": simulation.ok,
        "oom": str(simulation.oom) if simulation.oom is not None else None,
        "tflops": simulation.tflops,
        "samples_per_second": simulation.samples_per_second,
        "minibatch_time": simulation.minibatch_time,
        "makespan": simulation.makespan if simulation.ok else 0.0,
        "peak_bytes_per_gpu": (
            list(simulation.peak_memory_per_gpu) if simulation.ok else []
        ),
        "feasible": feasible,
        "plan": plan_to_dict(plan) if plan is not None else None,
        "trace_digest": trace_digest(simulation.trace) if simulation.ok else None,
        "n_trace_events": len(simulation.trace.events) if simulation.ok else 0,
        "resilience": None,
        "zero": None,
    }
    report = simulation.resilience
    if report is not None:
        record["resilience"] = {
            "n_faults": len(task.faults) if task.faults is not None else 0,
            "n_failures": len(report.failures),
            "goodput_samples_per_second": report.goodput_samples_per_second,
            "recovery_seconds": report.total_recovery_seconds,
            "lost_seconds": report.lost_seconds,
        }
    return record


def _execute_inference(task: SimTask) -> Dict:
    from repro.inference.run import run_serving

    outcome = run_serving(task.job.model, task.job.server, task.inference)
    record = _simulation_record(
        task, outcome.simulation, plan=None, feasible=outcome.simulation.ok
    )
    record["inference"] = outcome.metrics.to_json()
    return record


def _execute_hybrid(task: SimTask) -> Dict:
    from repro.parallel.hybrid import run_hybrid

    result = run_hybrid(task.job, task.hybrid, system=task.system)
    ok = result.ok
    return {
        "version": RECORD_VERSION,
        "label": task.label,
        "system": task.system,
        "ok": ok,
        "oom": result.oom,
        "tflops": result.tflops,
        "samples_per_second": result.samples_per_second,
        "minibatch_time": result.minibatch_time,
        "makespan": result.makespan if ok else 0.0,
        "peak_bytes_per_gpu": result.peak_memory_per_gpu() if ok else [],
        "feasible": all(
            replica.planner_report.feasible for replica in result.replicas
        ),
        "plan": None,
        "trace_digest": (
            trace_digest(result.replicas[0].simulation.trace) if ok else None
        ),
        "n_trace_events": (
            len(result.replicas[0].simulation.trace.events) if ok else 0
        ),
        "resilience": None,
        "zero": None,
        "hybrid": {
            "dp": result.dp,
            "placement_mode": result.placement.mode,
            "groups": [list(group) for group in result.placement.groups],
            "bucket_bytes": task.hybrid.bucket_bytes,
            "collective_mode": task.hybrid.collective_mode,
            "overlap": task.hybrid.overlap,
            "replica_minibatch_time": result.replica_minibatch_time,
            "exposed_allreduce": result.exposed_allreduce,
            "stage_allreduce": [
                {
                    "stage": sync.stage,
                    "devices": list(sync.devices),
                    "algorithm": sync.algorithm,
                    "grad_bytes": sync.grad_bytes,
                    "n_buckets": sync.n_buckets,
                    "allreduce_seconds": sync.allreduce_seconds,
                    "exposed_seconds": sync.exposed_seconds,
                }
                for sync in result.stage_allreduce
            ],
            "replica_trace_digests": [
                trace_digest(replica.simulation.trace)
                if replica.ok else None
                for replica in result.replicas
            ],
        },
    }


def _execute_autoplan(task: SimTask) -> Dict:
    """Run a shape search and record the winner plus the full ranking.

    Top-level metrics mirror the winning shape's cluster record (so
    CSV export and sweep tables read autoplan cells like any other);
    the ``autoplan`` sub-dict carries the ranked report, rejection
    reasons and pruning counters.
    """
    from repro.autoplan import autoplan as run_autoplan

    report = run_autoplan(task.job, task.cluster, config=task.autoplan,
                          system=task.system)
    best = report.best
    winner = best.record if best is not None else None
    ok = winner is not None and bool(winner["ok"])
    return {
        "version": RECORD_VERSION,
        "label": task.label,
        "system": task.system,
        "ok": ok,
        "oom": winner["oom"] if winner is not None else None,
        "tflops": winner["tflops"] if ok else 0.0,
        "samples_per_second": winner["samples_per_second"] if ok else 0.0,
        "minibatch_time": winner["minibatch_time"] if ok else 0.0,
        "makespan": winner["makespan"] if ok else 0.0,
        "peak_bytes_per_gpu": (
            list(winner["peak_bytes_per_gpu"]) if ok else []
        ),
        "feasible": winner["feasible"] if winner is not None else None,
        "plan": None,
        "trace_digest": winner["trace_digest"] if winner is not None else None,
        "n_trace_events": winner["n_trace_events"] if winner is not None else 0,
        "resilience": None,
        "zero": None,
        "autoplan": report.to_json(task.job),
    }


def _execute_cluster(task: SimTask) -> Dict:
    from repro.parallel.cluster import run_cluster

    result = run_cluster(task.job, task.cluster, task.cluster_config,
                         system=task.system)
    ok = result.ok
    first = result.chains[0][0]
    return {
        "version": RECORD_VERSION,
        "label": task.label,
        "system": task.system,
        "ok": ok,
        "oom": result.oom,
        "tflops": result.tflops,
        "samples_per_second": result.samples_per_second,
        "minibatch_time": result.minibatch_time,
        "makespan": result.makespan if ok else 0.0,
        "peak_bytes_per_gpu": result.peak_memory_per_gpu() if ok else [],
        "feasible": all(
            chain.planner_report.feasible
            for replica in result.chains for chain in replica
        ),
        "plan": None,
        "trace_digest": (
            trace_digest(first.simulation.trace) if ok else None
        ),
        "n_trace_events": (
            len(first.simulation.trace.events) if ok else 0
        ),
        "resilience": None,
        "zero": None,
        "cluster": {
            "n_servers": result.cluster.n_servers,
            "fabric": result.cluster.fabric.link_type.value,
            "tp": result.tp,
            "dp": result.dp,
            "pp": result.pp,
            "sequence_parallel": task.cluster_config.sequence_parallel,
            "placement_mode": result.placement.mode,
            "chains": [
                [list(chain) for chain in replica]
                for replica in result.placement.chains
            ],
            "bucket_bytes": task.cluster_config.bucket_bytes,
            "collective_mode": task.cluster_config.collective_mode,
            "overlap": task.cluster_config.overlap,
            "chain_minibatch_time": result.chain_minibatch_time,
            "exposed_tp_sync": result.exposed_tp_sync,
            "exposed_allreduce": result.exposed_allreduce,
            "tp_sync": [
                {
                    "stage": sync.stage,
                    "n_groups": sync.n_groups,
                    "microbatch_seconds": sync.microbatch_seconds,
                    "minibatch_seconds": sync.minibatch_seconds,
                }
                for sync in result.tp_sync
            ],
            "stage_allreduce": [
                {
                    "stage": sync.stage,
                    "devices": list(sync.devices),
                    "algorithm": sync.algorithm,
                    "grad_bytes": sync.grad_bytes,
                    "n_buckets": sync.n_buckets,
                    "allreduce_seconds": sync.allreduce_seconds,
                    "exposed_seconds": sync.exposed_seconds,
                }
                for sync in result.stage_allreduce
            ],
            "chain_trace_digests": [
                [
                    trace_digest(chain.simulation.trace) if chain.ok else None
                    for chain in replica
                ]
                for replica in result.chains
            ],
        },
    }


def _execute_zero(task: SimTask) -> Dict:
    from repro.baselines.zero import run_zero

    variant = task.system.split("-", 1)[1]
    result = run_zero(
        task.job.model,
        task.job.server,
        variant,
        task.job.samples_per_minibatch,
    )
    return {
        "version": RECORD_VERSION,
        "label": task.label,
        "system": task.system,
        "ok": result.ok,
        "oom": None if result.ok else result.reason,
        "tflops": result.tflops,
        "samples_per_second": (
            task.job.samples_per_minibatch / result.minibatch_time
            if result.ok and result.minibatch_time > 0 else 0.0
        ),
        "minibatch_time": result.minibatch_time,
        "makespan": result.minibatch_time,
        "peak_bytes_per_gpu": (
            [result.per_gpu_memory] * task.job.server.n_gpus
            if result.ok else []
        ),
        "feasible": result.ok,
        "plan": None,
        "trace_digest": None,
        "n_trace_events": 0,
        "resilience": None,
        "zero": {
            "variant": result.variant,
            "reason": result.reason,
            "compute_time": result.compute_time,
            "comm_exposed": result.comm_exposed,
            "offload_exposed": result.offload_exposed,
            "host_bytes": result.host_bytes,
        },
    }


def peak_gib(record: Dict) -> float:
    """Largest per-GPU peak of a record, in GiB (0.0 for OOM cells)."""
    peaks = record.get("peak_bytes_per_gpu") or []
    return max(peaks) / 2**30 if peaks else 0.0


RECORD_CSV_FIELDS = ["label", "system", "ok", "tflops", "samples_per_second",
                     "minibatch_time", "peak_gib"]


def records_to_csv(records) -> str:
    """Render runtime records as CSV text (one row per task).

    Formatting matches :func:`repro.analysis.sweep.to_csv`, so two
    runs of the same grid produce byte-identical files whenever their
    records match — the property the cache-roundtrip CI job asserts.
    """
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=RECORD_CSV_FIELDS)
    writer.writeheader()
    for record in records:
        if record is None:
            continue
        writer.writerow({
            "label": record["label"],
            "system": record["system"],
            "ok": int(bool(record["ok"])),
            "tflops": f"{record['tflops']:.3f}",
            "samples_per_second": f"{record['samples_per_second']:.3f}",
            "minibatch_time": f"{record['minibatch_time']:.6f}",
            "peak_gib": f"{peak_gib(record):.3f}",
        })
    return buffer.getvalue()
