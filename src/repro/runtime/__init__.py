"""Parallel sweep runtime with content-addressed result caching.

Design-space sweeps (the paper's Figures 7-9 and the resilience
grids) are embarrassingly parallel and heavily repetitive — the same
cells recur across benchmarks, CLI invocations, and CI runs.  This
package makes those sweeps fast and repeatable:

* :class:`SimTask` — one simulation as picklable, hashable data;
* :class:`ResultCache` — content-addressed on-disk records, keyed by
  a canonical hash of (job, system, planner config, fault schedule,
  plan, code salt);
* :class:`SweepRuntime` — fans tasks over a process pool with
  worker-crash retry and exclusion, deterministic result ordering,
  and structured progress reporting;
* :mod:`repro.runtime.presets` — the named grids of the paper's
  figures, shared by the CLI and the benchmark suite.

See ``docs/runtime.md`` for cache layout and invalidation rules.
"""

from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.pool import (
    ProgressEvent,
    RuntimeConfig,
    RuntimeReport,
    SweepRuntime,
    TaskOutcome,
    run_tasks,
)
from repro.runtime.presets import preset_tasks
from repro.runtime.task import (
    RECORD_VERSION,
    RUNTIME_CACHE_SALT,
    SimTask,
    execute_task,
    peak_gib,
    records_to_csv,
    trace_digest,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "ProgressEvent",
    "RuntimeConfig",
    "RuntimeReport",
    "SweepRuntime",
    "TaskOutcome",
    "run_tasks",
    "preset_tasks",
    "RECORD_VERSION",
    "RUNTIME_CACHE_SALT",
    "SimTask",
    "execute_task",
    "peak_gib",
    "records_to_csv",
    "trace_digest",
]
