"""Named task grids for the paper's sweep-shaped experiments.

One definition per figure, shared by the CLI (``repro sweep --preset
fig9``) and the benchmark suite, so the grid a benchmark asserts on
is exactly the grid a user can run — and both hit the same cache
entries.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.planner import PlannerConfig
from repro.hardware.cluster import Cluster, dgx1_cluster
from repro.hardware.server import Server, dgx1_server, dgx2_server
from repro.job import dapple_job, pipedream_job
from repro.models import bert_variant, gpt_variant
from repro.parallel.cluster import ClusterConfig
from repro.parallel.hybrid import HybridConfig
from repro.runtime.task import SimTask

FIG7_SIZES = (0.35, 0.64, 1.67, 4.0, 6.2)
FIG7_SYSTEMS = ("none", "recomputation", "gpu-cpu-swap", "d2d-only", "mpress")

FIG8_SIZES = (5.3, 10.3, 15.4, 20.4, 25.5)
FIG8_COLUMNS = ("none", "recomputation", "zero-offload", "zero-infinity",
                "mpress")

# Figure 9 ablation: the four planner variants, normalized to default.
FIG9_VARIANTS: Dict[str, PlannerConfig] = {
    "default": PlannerConfig(mapping_mode="identity", striping=False),
    "+dev-mapping": PlannerConfig(mapping_mode="auto", striping=False),
    "+striping": PlannerConfig(mapping_mode="identity", striping=True),
    "+both": PlannerConfig(mapping_mode="auto", striping=True),
}


def fig7_tasks(server: Server = None) -> List[SimTask]:
    """Figure 7 grid: Bert sizes x memory-saving systems (PipeDream)."""
    server = server if server is not None else dgx1_server()
    tasks = []
    for billions in FIG7_SIZES:
        job = pipedream_job(bert_variant(billions), server)
        for system in FIG7_SYSTEMS:
            tasks.append(SimTask(
                label=f"fig7/bert-{billions}/{system}",
                job=job,
                system=system,
            ))
    return tasks


def fig8_tasks(server: Server = None) -> List[SimTask]:
    """Figure 8 grid: GPT sizes x systems incl. ZeRO (DAPPLE)."""
    server = server if server is not None else dgx1_server()
    tasks = []
    for billions in FIG8_SIZES:
        job = dapple_job(gpt_variant(billions), server)
        for system in FIG8_COLUMNS:
            tasks.append(SimTask(
                label=f"fig8/{server.name}/gpt-{billions}/{system}",
                job=job,
                system=system,
            ))
    return tasks


def fig9_tasks(servers=None) -> List[SimTask]:
    """Figure 9 ablation grid: GPT-15.4B x planner variants x servers."""
    if servers is None:
        servers = (dgx1_server(), dgx2_server())
    tasks = []
    for server in servers:
        job = dapple_job(gpt_variant(15.4), server)
        for name, config in FIG9_VARIANTS.items():
            tasks.append(SimTask(
                label=f"fig9/{server.name}/{name}",
                job=job,
                system="mpress",
                config=config,
            ))
    return tasks


# Hybrid DP x PP scaling grid: replica counts on one DGX-1.
HYBRID_DP_GRID = (1, 2, 4)
HYBRID_SYSTEM = "recomputation"


def hybrid_tasks(server: Server = None, billions: float = 0.35) -> List[SimTask]:
    """DP-scaling grid: Bert x replica counts (PipeDream, per-replica)."""
    server = server if server is not None else dgx1_server()
    job = pipedream_job(bert_variant(billions), server)
    tasks = []
    for dp in HYBRID_DP_GRID:
        tasks.append(SimTask(
            label=f"hybrid/{server.name}/bert-{billions}/dp={dp}",
            job=job,
            system=HYBRID_SYSTEM,
            hybrid=HybridConfig(dp=dp),
        ))
    return tasks


# 3D-parallelism grid: GPT-5.3B on a 2-server DGX-1 cluster, TP x DP
# shapes with the pipeline depth filling the remainder of each block.
CLUSTER_SHAPES = ((1, 2, 4), (2, 2, 2), (2, 4, 2), (4, 2, 2))
CLUSTER_SYSTEM = "mpress"


def cluster_tasks(cluster: Cluster = None,
                  billions: float = 5.3) -> List[SimTask]:
    """TP x DP x PP grid over a cluster (DAPPLE per chain)."""
    cluster = cluster if cluster is not None else dgx1_cluster(2)
    job = dapple_job(gpt_variant(billions), cluster.servers[0],
                     n_minibatches=2)
    tasks = []
    for tp, dp, pp in CLUSTER_SHAPES:
        tasks.append(SimTask(
            label=(f"cluster/{cluster.name}/gpt-{billions}"
                   f"/tp={tp},dp={dp},pp={pp}"),
            job=job,
            system=CLUSTER_SYSTEM,
            cluster=cluster,
            cluster_config=ClusterConfig(tp=tp, dp=dp, pp=pp),
        ))
    return tasks


# Serving grid: one workload, the three KV overflow policies.  The
# pool is capped well below the workload's KV footprint so every
# policy actually exercises its overflow path (D2D stripes to spare
# GPUs, PCIe spills to host, "none" preempts and re-prefills).
SERVING_KV_MODES = ("d2d", "pcie", "none")


def serving_tasks(server: Server = None, billions: float = 5.3) -> List[SimTask]:
    """Serving grid: GPT x KV-swap policies under a tight KV pool."""
    from repro.inference import InferenceConfig

    server = server if server is not None else dgx1_server()
    job = dapple_job(gpt_variant(billions), server)
    tasks = []
    for mode in SERVING_KV_MODES:
        tasks.append(SimTask(
            label=f"serving/{server.name}/gpt-{billions}/kv={mode}",
            job=job,
            system="mpress",
            inference=InferenceConfig(
                seed=3, n_requests=10, arrival_rate=32.0,
                prompt_mean=128, prompt_max=256,
                output_mean=24, output_max=64,
                max_batch=6, kv_swap=mode, kv_pool_mib=199,
            ),
        ))
    return tasks


PRESETS = {
    "fig7": lambda: fig7_tasks(),
    "fig8-dgx1": lambda: fig8_tasks(dgx1_server()),
    "fig8-dgx2": lambda: fig8_tasks(dgx2_server()),
    "fig9": lambda: fig9_tasks(),
    "hybrid-dgx1": lambda: hybrid_tasks(dgx1_server()),
    "cluster-2xdgx1": lambda: cluster_tasks(dgx1_cluster(2)),
    "serving-dgx1": lambda: serving_tasks(dgx1_server()),
}


def preset_tasks(name: str) -> List[SimTask]:
    """Expand one named grid (CLI ``--preset``)."""
    from repro.errors import ConfigurationError

    builder = PRESETS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown sweep preset {name!r}; options: {sorted(PRESETS)}"
        )
    return builder()
