"""Gradient bucketing with backward-overlap accounting.

DDP-style training doesn't all-reduce one giant gradient tensor: it
fills fixed-size buckets as the backward pass produces gradients
(output-side layers first) and launches each bucket's all-reduce as
soon as it fills, overlapping communication with the rest of the
backward.  The model here is deliberately coarse — bucket ``i`` of
``B`` becomes ready at fraction ``(i+1)/B`` of the backward window,
and all-reduces serialise on the communication channel — but it
captures the two effects that matter: more/smaller buckets overlap
better until latency dominates, and only the *tail* of the
communication is exposed beyond the backward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GradientBucket:
    """One all-reduce unit: ``size`` bytes, ready part-way into backward."""

    index: int
    size: int
    ready_fraction: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"bucket size must be positive, got {self.size}")
        if not 0.0 < self.ready_fraction <= 1.0:
            raise ConfigurationError(
                f"ready fraction must be in (0, 1], got {self.ready_fraction}")


def gradient_buckets(grad_bytes: int, bucket_bytes: int
                     ) -> Tuple[GradientBucket, ...]:
    """Split ``grad_bytes`` into buckets of at most ``bucket_bytes``."""
    if grad_bytes <= 0:
        raise ConfigurationError(
            f"gradient bytes must be positive, got {grad_bytes}")
    if bucket_bytes <= 0:
        raise ConfigurationError(
            f"bucket bytes must be positive, got {bucket_bytes}")
    n = max(1, -(-grad_bytes // bucket_bytes))
    buckets = []
    remaining = grad_bytes
    for index in range(n):
        size = min(bucket_bytes, remaining)
        remaining -= size
        buckets.append(GradientBucket(
            index=index, size=size, ready_fraction=(index + 1) / n))
    return tuple(buckets)


def exposed_allreduce_time(buckets: Sequence[GradientBucket],
                           allreduce_seconds: Sequence[float],
                           backward_window: float,
                           overlap: bool = True) -> float:
    """Communication time left exposed beyond the backward window.

    Without overlap every all-reduce waits for the full backward, so
    everything is exposed.  With overlap, bucket ``i``'s all-reduce
    starts at ``max(ready_i * window, previous finish)`` and the
    exposed time is whatever spills past the window.
    """
    if len(buckets) != len(allreduce_seconds):
        raise ConfigurationError(
            f"{len(buckets)} buckets but {len(allreduce_seconds)} times")
    if backward_window < 0:
        raise ConfigurationError(
            f"backward window must be >= 0, got {backward_window}")
    if not overlap:
        return float(sum(allreduce_seconds))
    finish = 0.0
    for bucket, seconds in zip(buckets, allreduce_seconds):
        start = max(bucket.ready_fraction * backward_window, finish)
        finish = start + seconds
    return max(0.0, finish - backward_window)
