"""Tensor parallelism: Megatron-style intra-layer sharding.

A TP group of ``tp`` devices splits every transformer layer's
attention heads and MLP columns ``tp`` ways.  Each rank then runs the
*same* pipeline schedule over a model whose per-layer parameters,
FLOPs and activations are scaled down — which is exactly how the
sharding is represented here: :func:`tp_shard_model` rewrites a
:class:`~repro.models.layers.ModelSpec` with :class:`TPLayerSpec`
layers, and the existing partitioner / simulator / memory planner run
unchanged over the shard.

What sharding does *not* shrink is communication: every sharded block
ends in a partial-sum all-reduce across the TP group
(:func:`repro.models.costs.tp_allreduce_count` per direction), priced
on whatever tier the group spans — the reason placement keeps TP
groups inside one server (:mod:`repro.parallel.cluster`).

Sequence parallelism (Korthikanti et al.) additionally shards the
replicated layernorm/dropout tensors along the sequence axis,
changing the activation split
(:func:`repro.sim.memory.tensor_parallel_activation_scale`) and the
stage-boundary tensor (``1/tp``) while moving identical bytes on the
wire (ring all-reduce ≡ reduce-scatter + all-gather).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import ConfigurationError
from repro.models import costs
from repro.models.layers import LayerKind, LayerSpec, ModelSpec
from repro.sim.memory import tensor_parallel_activation_scale


@dataclass(frozen=True)
class TPLayerSpec(LayerSpec):
    """One layer as seen by a single tensor-parallel rank."""

    tp: int = 1
    sequence_parallel: bool = False

    def __post_init__(self) -> None:
        if self.tp < 1:
            raise ConfigurationError(
                f"tensor-parallel degree must be >= 1, got {self.tp}")

    @property
    def params(self) -> int:
        base = LayerSpec.params.fget(self)
        if self.tp == 1:
            return base
        if self.kind is LayerKind.TRANSFORMER:
            # Matmul weights (12 h^2) shard cleanly; layernorm gains/
            # biases (13 h) stay replicated on every rank.
            hidden = self.config.hidden
            return (12 * hidden * hidden) // self.tp + 13 * hidden
        # Embedding tables shard along the vocab/position axis; the
        # head ties weights with the embedding (zero of its own).
        return base // self.tp

    def forward_flops(self, microbatch: int) -> float:
        return LayerSpec.forward_flops(self, microbatch) / self.tp

    def activation_bytes(self, microbatch: int, bytes_per_element: int = 2) -> int:
        if self.tp == 1:
            return LayerSpec.activation_bytes(self, microbatch, bytes_per_element)
        cfg = self.config
        if self.kind is LayerKind.TRANSFORMER:
            linear, attention = costs.layer_activation_split(
                cfg.hidden, cfg.seq_len, microbatch, cfg.heads, bytes_per_element
            )
            scale = tensor_parallel_activation_scale(self.tp, self.sequence_parallel)
            return int(linear * scale + attention / self.tp)
        base = LayerSpec.activation_bytes(self, microbatch, bytes_per_element)
        return base // self.tp if self.sequence_parallel else base

    def boundary_bytes(self, microbatch: int, bytes_per_element: int = 2) -> int:
        base = LayerSpec.boundary_bytes(self, microbatch, bytes_per_element)
        if self.tp > 1 and self.sequence_parallel:
            # SP keeps the boundary tensor sequence-sharded; plain TP
            # materialises the full tensor on every rank post all-reduce.
            return max(1, base // self.tp)
        return base

    # -- TP collective accounting ---------------------------------------

    @property
    def allreduces_per_direction(self) -> int:
        return costs.tp_allreduce_count(self.kind.value)

    def tp_comm_bytes(self, microbatch: int, bytes_per_element: int = 2) -> int:
        """Logical bytes this layer all-reduces over fwd+bwd (0 if tp=1)."""
        if self.tp == 1:
            return 0
        cfg = self.config
        return costs.tp_layer_comm_bytes(
            self.kind.value, cfg.hidden, cfg.seq_len, microbatch, bytes_per_element
        )


def tp_shard_model(model: ModelSpec, tp: int,
                   sequence_parallel: bool = False) -> ModelSpec:
    """The model one TP rank runs: every layer rewritten as a shard."""
    if tp < 1:
        raise ConfigurationError(f"tensor-parallel degree must be >= 1, got {tp}")
    if tp == 1:
        return model
    cfg = model.config
    if cfg.hidden % tp != 0:
        raise ConfigurationError(
            f"tensor-parallel degree {tp} does not divide hidden {cfg.hidden}")
    if tp > cfg.heads:
        # An uneven head split (e.g. 51 heads over 2 ranks) is modelled
        # continuously — the analytic costs divide by ``tp`` — but more
        # ranks than heads would leave some with no attention work.
        raise ConfigurationError(
            f"tensor-parallel degree {tp} exceeds {cfg.heads} attention heads")
    layers = [
        TPLayerSpec(index=layer.index, kind=layer.kind, config=layer.config,
                    tp=tp, sequence_parallel=sequence_parallel)
        for layer in model.layers
    ]
    return ModelSpec(config=cfg, layers=layers)


def valid_tp_degrees(model: ModelSpec, limit: int) -> Sequence[int]:
    """Power-of-two TP degrees ``model`` can shard to, up to ``limit``.

    The shard constraints mirror :func:`tp_shard_model`: the degree
    must divide the hidden dimension and not exceed the attention head
    count.  The autoplan candidate generator uses this to skip degrees
    that could never shard (1 is always valid).
    """
    cfg = model.config
    degrees = []
    tp = 1
    while tp <= limit:
        if cfg.hidden % tp == 0 and tp <= cfg.heads:
            degrees.append(tp)
        tp *= 2
    return degrees


def tp_sync_time(layers: Sequence[LayerSpec], topology, group: Sequence[int],
                 microbatch: int, bytes_per_element: int = 2,
                 algorithm: str = "ring", pcie=None) -> float:
    """Analytic seconds of TP all-reduces for ``layers`` over one
    microbatch's forward+backward on ``group``.

    Payloads dedupe to at most a handful of distinct sizes, so the
    collective model runs once per size, not once per layer.
    """
    from repro.collectives.cost import all_reduce_time
    from repro.hardware.links import PCIE3_X16

    group = tuple(group)
    if len(group) < 2:
        return 0.0
    if pcie is None:
        pcie = PCIE3_X16
    by_size: Dict[int, float] = {}
    total = 0.0
    for layer in layers:
        cfg = layer.config
        count = 2 * costs.tp_allreduce_count(layer.kind.value)
        payload = costs.tp_allreduce_bytes(
            cfg.hidden, cfg.seq_len, microbatch, bytes_per_element)
        if payload not in by_size:
            by_size[payload] = all_reduce_time(
                topology, group, payload, algorithm, pcie=pcie)
        total += count * by_size[payload]
    return total
