"""3D parallelism over a multi-server cluster: TP x DP x PP.

``run_cluster`` completes the parallelism cube.  Each data-parallel
replica is a *block* of ``tp x pp`` GPUs: ``tp`` tensor-parallel
pipeline chains of ``pp`` stages each.  Every chain runs the full
memory-managed pipeline (through the existing system facade) over a
TP-sharded model (:mod:`repro.parallel.tensor`); the two
synchronisation planes are layered on analytically, exactly like
PR 4's hybrid DP layer:

* **TP sync** — per-layer partial-sum all-reduces inside each stage's
  TP group, every microbatch, both directions.  These inflate the
  pipeline's bottleneck stage, so the exposed cost per minibatch is
  the *worst stage's* TP seconds (other stages' collectives hide
  behind the bottleneck's).
* **DP sync** — per-stage gradient buckets all-reduce across replicas
  (one group per (tp-rank, stage) shard), overlapping with the
  backward drain as in :mod:`repro.parallel.hybrid`.

Placement is TP-inner / DP-outer against the tier hierarchy: chains
never straddle a server (cross-server stage traffic would contend on
the thin fabric every microbatch), TP groups sit on the tightest
lanes available, and whether DP replicas pack into one box or spread
across the fabric is decided by scoring both layouts with the
analytic collective model.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.serialization import canonical_payload, config_digest
from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster, ClusterTopology
from repro.job import TrainingJob
from repro.collectives.cost import all_reduce_time, pair_transfer_time
from repro.collectives.schedule import ALL_REDUCE_ALGORITHMS
from repro.parallel.hybrid import (
    COLLECTIVE_MODES,
    DEFAULT_BUCKET_BYTES,
    StageAllReduce,
)
from repro.parallel.placement import (
    REFERENCE_ALLREDUCE_BYTES,
    REFERENCE_BOUNDARY_BYTES,
    sub_server,
)
from repro.parallel.sync import StageTPSync, dp_sync_plane, tp_sync_plane
from repro.parallel.tensor import tp_shard_model

CLUSTER_PLACEMENT_MODES = ("auto", "packed", "spread")

_MODE_RANK = {mode: rank for rank, mode in
              enumerate(CLUSTER_PLACEMENT_MODES[1:])}


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one TP x DP x PP cluster execution (hashable)."""

    tp: int = 1
    dp: int = 1
    pp: int = 0                           # 0 = fill: n_gpus // (tp * dp)
    sequence_parallel: bool = False
    algorithm: str = "auto"               # all-reduce algorithm or "auto"
    bucket_bytes: int = DEFAULT_BUCKET_BYTES
    overlap: bool = True
    collective_mode: str = "analytic"     # "analytic" | "simulate"
    placement_mode: str = "auto"          # "auto" | "packed" | "spread"

    def __post_init__(self) -> None:
        if self.tp < 1 or self.dp < 1 or self.pp < 0:
            raise ConfigurationError(
                f"parallel degrees must be positive (pp may be 0 for auto), "
                f"got tp={self.tp} dp={self.dp} pp={self.pp}")
        if self.bucket_bytes <= 0:
            raise ConfigurationError(
                f"bucket bytes must be positive, got {self.bucket_bytes}")
        if self.algorithm != "auto" and self.algorithm not in ALL_REDUCE_ALGORITHMS:
            raise ConfigurationError(
                f"unknown all-reduce algorithm {self.algorithm!r}; options: "
                f"{('auto',) + ALL_REDUCE_ALGORITHMS}")
        if self.collective_mode not in COLLECTIVE_MODES:
            raise ConfigurationError(
                f"unknown collective mode {self.collective_mode!r}; "
                f"options: {COLLECTIVE_MODES}")
        if self.placement_mode not in CLUSTER_PLACEMENT_MODES:
            raise ConfigurationError(
                f"unknown placement mode {self.placement_mode!r}; "
                f"options: {CLUSTER_PLACEMENT_MODES}")

    def stages(self, n_gpus: int) -> int:
        """Resolved pipeline depth on an ``n_gpus`` cluster."""
        if self.pp > 0:
            return self.pp
        pp = n_gpus // (self.tp * self.dp)
        if pp < 1:
            raise ConfigurationError(
                f"tp={self.tp} x dp={self.dp} exceeds {n_gpus} GPUs")
        return pp


@dataclass(frozen=True)
class ClusterPlacement:
    """``chains[r][t][s]`` is the global GPU of replica ``r``,
    TP rank ``t``, pipeline stage ``s``."""

    chains: Tuple[Tuple[Tuple[int, ...], ...], ...]
    mode: str
    tp_score: float            # analytic seconds, reference TP all-reduces
    allreduce_score: float     # analytic seconds, reference DP buckets
    pipeline_score: float      # analytic seconds, adjacent-stage p2p
    stage_major: bool = True   # within-block assignment (TP-tight?)

    @property
    def dp(self) -> int:
        return len(self.chains)

    @property
    def tp(self) -> int:
        return len(self.chains[0])

    @property
    def pp(self) -> int:
        return len(self.chains[0][0])

    def chain(self, replica: int, tp_rank: int) -> Tuple[int, ...]:
        return self.chains[replica][tp_rank]

    def tp_group(self, replica: int, stage: int) -> Tuple[int, ...]:
        """Devices holding replica ``replica``'s stage-``stage`` shards."""
        return tuple(self.chains[replica][t][stage] for t in range(self.tp))

    def dp_group(self, tp_rank: int, stage: int) -> Tuple[int, ...]:
        """Devices that all-reduce the (tp_rank, stage) gradient shard."""
        return tuple(self.chains[r][tp_rank][stage] for r in range(self.dp))

    @property
    def score(self) -> float:
        return self.tp_score + self.allreduce_score + self.pipeline_score

    @property
    def canonical_key(self) -> Tuple:
        """Total order used to break score ties deterministically.

        Equal-scored layouts resolve by mode (packed before spread),
        then within-block assignment (stage-major before chain-major),
        then the chain tuple itself — the same preference order the
        historical first-wins scan encoded implicitly, but stable by
        construction across runs and Python versions.
        """
        return (
            self.score,
            _MODE_RANK.get(self.mode, len(_MODE_RANK)),
            0 if self.stage_major else 1,
            self.chains,
        )


def _block_chains(block: Sequence[int], tp: int, pp: int, stage_major: bool
                  ) -> Tuple[Tuple[int, ...], ...]:
    """Assign a ``tp*pp`` device block to chains.

    ``stage_major`` keeps each stage's TP group on consecutive devices
    (TP-tight); the alternative keeps each chain contiguous
    (pipeline-tight).  Both are scored; the collective model decides.
    """
    if stage_major:
        return tuple(
            tuple(block[s * tp + t] for s in range(pp)) for t in range(tp)
        )
    return tuple(
        tuple(block[t * pp + s] for s in range(pp)) for t in range(tp)
    )


def _replica_blocks(topology: ClusterTopology, tp: int, dp: int, pp: int,
                    spread: bool) -> Optional[List[List[int]]]:
    """Carve ``dp`` blocks of ``tp*pp`` GPUs, none straddling a server.

    ``packed`` fills servers in order; ``spread`` deals replicas
    round-robin across servers.  Returns ``None`` when the shape does
    not fit (a block larger than a server, or uneven round-robin).
    """
    block = tp * pp
    free = [list(topology.server_devices(s)) for s in range(topology.n_servers)]
    blocks: List[List[int]] = []
    server = 0
    for r in range(dp):
        if spread:
            server = r % topology.n_servers
            if len(free[server]) < block:
                return None
        else:
            while server < len(free) and len(free[server]) < block:
                server += 1
            if server >= len(free):
                return None
        blocks.append(free[server][:block])
        free[server] = free[server][block:]
    return blocks


def _score_cluster_layout(topology: ClusterTopology,
                          chains: Tuple[Tuple[Tuple[int, ...], ...], ...]
                          ) -> Tuple[float, float, float]:
    dp, tp = len(chains), len(chains[0])
    pp = len(chains[0][0])
    tp_seconds = 0.0
    if tp > 1:
        for r in range(dp):
            for s in range(pp):
                group = tuple(chains[r][t][s] for t in range(tp))
                tp_seconds += all_reduce_time(
                    topology, group, REFERENCE_BOUNDARY_BYTES, "auto")
    allreduce = 0.0
    if dp > 1:
        for t in range(tp):
            for s in range(pp):
                group = tuple(chains[r][t][s] for r in range(dp))
                allreduce += all_reduce_time(
                    topology, group, REFERENCE_ALLREDUCE_BYTES, "auto")
    pipeline = 0.0
    for replica in chains:
        for chain in replica:
            for s in range(pp - 1):
                pipeline += pair_transfer_time(
                    topology, chain[s], chain[s + 1], REFERENCE_BOUNDARY_BYTES)
    return tp_seconds, allreduce, pipeline


def cluster_placement(topology: ClusterTopology, tp: int, dp: int, pp: int,
                      mode: str = "auto") -> ClusterPlacement:
    """Place ``dp`` replicas of ``tp`` pipeline chains on the cluster.

    Every candidate keeps chains within one server (TP-inner); the
    ``packed`` / ``spread`` choice and the within-block assignment are
    scored with the analytic collective model on reference sizes.
    """
    if mode not in CLUSTER_PLACEMENT_MODES:
        raise ConfigurationError(
            f"unknown placement mode {mode!r}; "
            f"options: {CLUSTER_PLACEMENT_MODES}")
    if min(tp, dp, pp) < 1:
        raise ConfigurationError(
            f"parallel degrees must be >= 1, got tp={tp} dp={dp} pp={pp}")
    if tp * dp * pp > topology.n_gpus:
        raise ConfigurationError(
            f"tp={tp} x dp={dp} x pp={pp} needs {tp * dp * pp} GPUs, "
            f"cluster has {topology.n_gpus}")
    if tp * pp > max(t.n_gpus for t in topology.servers):
        raise ConfigurationError(
            f"a replica block (tp*pp = {tp * pp} GPUs) must fit inside "
            f"one server (largest has "
            f"{max(t.n_gpus for t in topology.servers)})")
    wanted = CLUSTER_PLACEMENT_MODES[1:] if mode == "auto" else (mode,)
    candidates: List[ClusterPlacement] = []
    for name in wanted:
        blocks = _replica_blocks(topology, tp, dp, pp, spread=(name == "spread"))
        if blocks is None:
            continue
        for stage_major in (True, False):
            chains = tuple(
                _block_chains(block, tp, pp, stage_major) for block in blocks
            )
            tp_s, ar_s, pipe_s = _score_cluster_layout(topology, chains)
            candidates.append(ClusterPlacement(
                chains=chains, mode=name, tp_score=tp_s,
                allreduce_score=ar_s, pipeline_score=pipe_s,
                stage_major=stage_major))
    if not candidates:
        raise ConfigurationError(
            f"no placement fits tp={tp} dp={dp} pp={pp} on this cluster "
            f"(mode={mode!r})")
    # min() over the canonical key, not a first-wins scan: equal scores
    # resolve to the same layout on every run and Python version.
    return min(candidates, key=lambda candidate: candidate.canonical_key)


@dataclass
class ClusterResult:
    """Chain runs plus the TP and DP synchronisation planes."""

    job: TrainingJob
    cluster: Cluster
    config: ClusterConfig
    system: str
    placement: ClusterPlacement
    chains: List[List]          # MPressResult per [replica][tp_rank]
    stage_allreduce: List[StageAllReduce]
    tp_sync: List[StageTPSync]

    @property
    def ok(self) -> bool:
        return all(chain.ok for replica in self.chains for chain in replica)

    @property
    def dp(self) -> int:
        return self.placement.dp

    @property
    def tp(self) -> int:
        return self.placement.tp

    @property
    def pp(self) -> int:
        return self.placement.pp

    @property
    def exposed_allreduce(self) -> float:
        if not self.stage_allreduce:
            return 0.0
        return max(sync.exposed_seconds for sync in self.stage_allreduce)

    @property
    def exposed_tp_sync(self) -> float:
        """Per-minibatch TP cost: the bottleneck stage's collectives."""
        if not self.tp_sync:
            return 0.0
        return max(sync.minibatch_seconds for sync in self.tp_sync)

    @property
    def chain_minibatch_time(self) -> float:
        return max(
            chain.simulation.minibatch_time
            for replica in self.chains for chain in replica)

    @property
    def minibatch_time(self) -> float:
        return (self.chain_minibatch_time + self.exposed_tp_sync
                + self.exposed_allreduce)

    @property
    def makespan(self) -> float:
        longest = max(
            chain.simulation.makespan
            for replica in self.chains for chain in replica)
        overhead = self.exposed_tp_sync + self.exposed_allreduce
        return longest + self.job.n_minibatches * overhead

    @property
    def samples_per_second(self) -> float:
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        return self.dp * self.job.samples_per_minibatch / self.minibatch_time

    @property
    def tflops(self) -> float:
        """Model FLOPs per second: ``dp`` full-model minibatches per
        interval (a replica's ``tp`` chains jointly compute one)."""
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        return self.dp * self.job.minibatch_flops() / self.minibatch_time / 1e12

    @property
    def oom(self) -> Optional[str]:
        for r, replica in enumerate(self.chains):
            for t, chain in enumerate(replica):
                if not chain.ok:
                    return f"replica {r} tp-rank {t}: {chain.simulation.oom}"
        return None

    def peak_memory_per_gpu(self) -> List[int]:
        """Per-GPU peaks across the whole cluster (staging added)."""
        peaks = [0] * self.cluster.n_gpus
        staging = 2 * self.config.bucket_bytes if self.dp > 1 else 0
        for replica_chains, replica_results in zip(self.placement.chains,
                                                   self.chains):
            for devices, result in zip(replica_chains, replica_results):
                if not result.ok:
                    continue
                sim_peaks = result.simulation.peak_memory_per_gpu
                for local, device in enumerate(devices):
                    peaks[device] = int(sim_peaks[local]) + staging
        return peaks


def chain_server(cluster: Cluster, topology: ClusterTopology,
                 devices: Tuple[int, ...]):
    """The sub-server one pipeline chain sees (always within one box)."""
    server_index = topology.server_of(devices[0])
    base = topology.server_offsets()[server_index]
    local = [device - base for device in devices]
    return sub_server(cluster.servers[server_index], local)


# Backward-compatible alias (pre-autoplan private name).
_chain_server = chain_server


# -- congruent-chain memoisation ---------------------------------------
#
# Placed chains are frequently *congruent*: same sharded model, same
# batch geometry, same induced carve-out topology — only the
# sub-server's display name (which devices it was cut from) differs.
# The simulator is deterministic, so congruent chains produce
# byte-identical results (records embed no server names; trace digests
# hash device-indexed events).  One simulation per congruence class is
# the "one Lowering skeleton per shape family" the frontier executor
# relies on; ``shared_chain_memo`` widens the reuse window across
# ``run_cluster`` calls (e.g. a whole shape grid).

_SHARED_CHAIN_MEMO: Optional[Dict[str, object]] = None


@contextlib.contextmanager
def shared_chain_memo():
    """Share congruent-chain results across ``run_cluster`` calls.

    Nested uses join the outermost scope's memo; the memo dies with
    the scope, so long-running processes don't accumulate results.
    """
    global _SHARED_CHAIN_MEMO
    outer = _SHARED_CHAIN_MEMO
    if outer is None:
        _SHARED_CHAIN_MEMO = {}
    try:
        yield _SHARED_CHAIN_MEMO
    finally:
        _SHARED_CHAIN_MEMO = outer


def _chain_memo_key(chain_job: TrainingJob, system: str, reserve: int) -> str:
    """Congruence class of one chain run (sub-server name stripped)."""
    normalized = replace(chain_job,
                         server=replace(chain_job.server, name="chain"))
    return config_digest({
        "job": canonical_payload(normalized),
        "system": system,
        "reserve": reserve,
    })


def plan_chain_job(job: TrainingJob, cluster: Cluster,
                   config: ClusterConfig) -> Tuple[TrainingJob, ClusterPlacement]:
    """The representative chain's job (replica 0, TP rank 0).

    What ``repro plan`` plans when pointed at a cluster: one pipeline
    chain's TP-sharded model on its placed carve-out.  All chains are
    congruent under the homogeneous placements produced here, so one
    plan stands for the fleet.
    """
    if config is None:
        config = ClusterConfig()
    topology = cluster.topology
    pp = config.stages(topology.n_gpus)
    placement = cluster_placement(topology, config.tp, config.dp, pp,
                                  mode=config.placement_mode)
    sharded = tp_shard_model(job.model, config.tp, config.sequence_parallel)
    devices = placement.chain(0, 0)
    chain = replace(job, model=sharded,
                    server=chain_server(cluster, topology, devices))
    return chain, placement


def run_cluster(job: TrainingJob, cluster: Cluster,
                config: Optional[ClusterConfig] = None,
                system: str = "mpress") -> ClusterResult:
    """Run a TP x DP x PP job over a cluster.

    ``job`` supplies the model and batch geometry; its ``server``
    field is superseded by the cluster's placement (each chain runs on
    its own carve-out).  Weak scaling as in ``run_hybrid``: every
    replica processes ``samples_per_minibatch`` samples.
    """
    from repro.core.mpress import run_system

    if config is None:
        config = ClusterConfig()
    topology = cluster.topology
    pp = config.stages(topology.n_gpus)
    placement = cluster_placement(topology, config.tp, config.dp, pp,
                                  mode=config.placement_mode)
    sharded = tp_shard_model(job.model, config.tp, config.sequence_parallel)
    reserve = 2 * config.bucket_bytes if config.dp > 1 else 0
    flat_server = cluster.as_server()
    memo = _SHARED_CHAIN_MEMO if _SHARED_CHAIN_MEMO is not None else {}
    chains: List[List] = []
    for replica in range(config.dp):
        replica_chains = []
        for tp_rank in range(config.tp):
            devices = placement.chain(replica, tp_rank)
            chain_job = replace(job, model=sharded,
                                server=chain_server(cluster, topology, devices))
            key = _chain_memo_key(chain_job, system, reserve)
            result = memo.get(key)
            if result is None:
                result = run_system(chain_job, system, reserve_bytes=reserve)
                memo[key] = result
            replica_chains.append(result)
        chains.append(replica_chains)
    representative = chains[0][0]
    tp_sync = tp_sync_plane(placement, topology, job, config,
                            representative.job)
    dp_sync = dp_sync_plane(placement, topology, job, config, flat_server,
                            representative.job,
                            representative.plan.device_of)
    return ClusterResult(job=job, cluster=cluster, config=config,
                         system=system, placement=placement, chains=chains,
                         stage_allreduce=dp_sync, tp_sync=tp_sync)
