"""Intra- and inter-server parallelism beyond the pipeline.

Replica placement over the topology, per-replica sub-servers, DDP
gradient bucketing with backward overlap, the ``run_hybrid`` entry
point that composes replicas (each a full memory-managed pipeline)
with topology-aware all-reduce from :mod:`repro.collectives`, and —
one level up — Megatron-style tensor parallelism plus the
``run_cluster`` TP x DP x PP composition over a multi-server
:class:`~repro.hardware.cluster.Cluster`.
"""

from repro.parallel.bucketing import (
    GradientBucket,
    exposed_allreduce_time,
    gradient_buckets,
)
from repro.parallel.hybrid import (
    COLLECTIVE_MODES,
    HybridConfig,
    HybridResult,
    StageAllReduce,
    run_hybrid,
)
from repro.parallel.placement import (
    PLACEMENT_MODES,
    ReplicaPlacement,
    replica_placement,
    sub_server,
)
from repro.parallel.sync import (
    SyncPricing,
    dp_sync_plane,
    price_sync_planes,
    tp_sync_plane,
)
from repro.parallel.tensor import TPLayerSpec, tp_shard_model, tp_sync_time
from repro.parallel.cluster import (
    CLUSTER_PLACEMENT_MODES,
    ClusterConfig,
    ClusterPlacement,
    ClusterResult,
    StageTPSync,
    chain_server,
    cluster_placement,
    run_cluster,
    shared_chain_memo,
)

__all__ = [
    "GradientBucket",
    "exposed_allreduce_time",
    "gradient_buckets",
    "COLLECTIVE_MODES",
    "HybridConfig",
    "HybridResult",
    "StageAllReduce",
    "run_hybrid",
    "PLACEMENT_MODES",
    "ReplicaPlacement",
    "replica_placement",
    "sub_server",
    "TPLayerSpec",
    "tp_shard_model",
    "tp_sync_time",
    "SyncPricing",
    "dp_sync_plane",
    "price_sync_planes",
    "tp_sync_plane",
    "CLUSTER_PLACEMENT_MODES",
    "ClusterConfig",
    "ClusterPlacement",
    "ClusterResult",
    "StageTPSync",
    "chain_server",
    "cluster_placement",
    "run_cluster",
    "shared_chain_memo",
]
