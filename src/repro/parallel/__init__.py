"""Hybrid data x pipeline parallelism on one server.

Replica placement over the topology, per-replica sub-servers, DDP
gradient bucketing with backward overlap, and the ``run_hybrid``
entry point that composes replicas (each a full memory-managed
pipeline) with topology-aware all-reduce from
:mod:`repro.collectives`.
"""

from repro.parallel.bucketing import (
    GradientBucket,
    exposed_allreduce_time,
    gradient_buckets,
)
from repro.parallel.hybrid import (
    COLLECTIVE_MODES,
    HybridConfig,
    HybridResult,
    StageAllReduce,
    run_hybrid,
)
from repro.parallel.placement import (
    PLACEMENT_MODES,
    ReplicaPlacement,
    replica_placement,
    sub_server,
)

__all__ = [
    "GradientBucket",
    "exposed_allreduce_time",
    "gradient_buckets",
    "COLLECTIVE_MODES",
    "HybridConfig",
    "HybridResult",
    "StageAllReduce",
    "run_hybrid",
    "PLACEMENT_MODES",
    "ReplicaPlacement",
    "replica_placement",
    "sub_server",
]
