"""The two synchronisation planes of a TP x DP x PP run, shared
between execution and pricing.

``run_cluster`` historically carried private ``_tp_sync`` / ``_dp_sync``
helpers; the autoplan pricing layer needs the same accounting *without*
simulating any chain first, so both planes live here, parameterised by
the chain job (either a simulated representative's job or an
analytically built one) and a stage -> device mapping.

Two pricing regimes:

* **independent** (``contention=False``) — each collective group is
  priced as if it owned its links outright.  This is what
  ``run_cluster`` has always reported and what the pinned cluster
  golden records; it stays byte-identical.
* **contended** (``contention=True``) — the regime autoplan ranks
  shapes under.  Two effects the independent model misses:

  1. *Shared NIC lanes.*  Every (tp-rank, stage) gradient group that
     crosses the fabric funnels through its server's ``nic_lanes``.
     When ``g`` crossing groups share a server's lanes, each sees
     ``g / nic_lanes`` of a lane, so its bucket times stretch by that
     factor.
  2. *TP traffic inside the DP window.*  Gradient buckets hide behind
     the backward drain, but during that same drain the chain is still
     issuing per-microbatch TP all-reduces on the same GPUs' comm
     engines.  The backward half of the stage's TP time is subtracted
     from the overlap window.

  Both effects only ever shrink the window or stretch the transfers,
  and :func:`~repro.parallel.bucketing.exposed_allreduce_time` is
  monotone (non-increasing in the window, non-decreasing in bucket
  times), so the contended price is >= the independent price on every
  shape, with equality when nothing crosses the fabric and tp == 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.collectives.cost import group_span
from repro.job import TrainingJob
from repro.parallel.bucketing import exposed_allreduce_time, gradient_buckets
from repro.parallel.hybrid import StageAllReduce, _bucket_times
from repro.parallel.tensor import tp_sync_time


@dataclass(frozen=True)
class StageTPSync:
    """Tensor-parallel collective accounting for one pipeline stage."""

    stage: int
    n_groups: int
    microbatch_seconds: float   # TP all-reduce time, one microbatch fwd+bwd
    minibatch_seconds: float    # x microbatches per minibatch


def tp_sync_plane(placement, topology, job: TrainingJob, config,
                  chain_job: TrainingJob) -> List[StageTPSync]:
    """Per-stage TP collective accounting (worst group per stage).

    ``chain_job`` supplies the sharded stage plan — the simulated
    representative's job in ``run_cluster``, an analytic chain job in
    the pricing layer; the numbers are identical either way.
    """
    if placement.tp < 2:
        return []
    plan = chain_job.stage_plan
    algorithm = config.algorithm if config.algorithm != "auto" else "ring"
    syncs: List[StageTPSync] = []
    for stage in range(placement.pp):
        worst = 0.0
        for replica in range(placement.dp):
            group = placement.tp_group(replica, stage)
            seconds = tp_sync_time(
                plan.stage(stage).layers, topology, group,
                job.microbatch_size, job.bytes_per_element,
                algorithm=algorithm)
            worst = max(worst, seconds)
        per_minibatch = worst * job.microbatches_per_minibatch
        syncs.append(StageTPSync(
            stage=stage,
            n_groups=placement.dp,
            microbatch_seconds=worst,
            minibatch_seconds=per_minibatch,
        ))
    return syncs


def dp_lane_factors(topology, placement) -> Dict[Tuple[int, int], float]:
    """NIC-lane stretch factor per (tp_rank, stage) gradient group.

    A group that stays inside one server keeps factor 1.0.  A group
    that crosses the fabric shares its servers' NIC lanes with every
    *other* crossing group touching the same server; its transfers
    stretch by the worst ``crossing_groups / nic_lanes`` ratio along
    its path (never below 1.0).
    """
    groups: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    for stage in range(placement.pp):
        for tp_rank in range(placement.tp):
            groups[(tp_rank, stage)] = placement.dp_group(tp_rank, stage)
    server_of = getattr(topology, "server_of", None)
    if server_of is None:
        return {key: 1.0 for key in groups}
    spans = {key: {server_of(d) for d in group}
             for key, group in groups.items()}
    crossing = {key for key, span in spans.items() if len(span) > 1}
    per_server: Dict[int, int] = {}
    for key in crossing:
        for server in spans[key]:
            per_server[server] = per_server.get(server, 0) + 1
    lanes = max(1, getattr(topology, "nic_lanes", 1))
    factors: Dict[Tuple[int, int], float] = {}
    for key in groups:
        if key in crossing:
            worst = max(per_server[server] for server in spans[key])
            factors[key] = max(1.0, worst / lanes)
        else:
            factors[key] = 1.0
    return factors


def dp_sync_plane(placement, topology, job: TrainingJob, config, server,
                  chain_job: TrainingJob,
                  device_of: Callable[[int], int],
                  tp_sync: Sequence[StageTPSync] = (),
                  contention: bool = False) -> List[StageAllReduce]:
    """Per-(tp-rank, stage) gradient sync; report the worst per stage.

    ``device_of`` maps a chain stage to its device in ``chain_job``'s
    carve-out (a plan's ``device_of`` after simulation, the identity
    map for analytic pricing).  With ``contention=False`` this is the
    historical independent accounting, byte for byte.
    """
    if placement.dp < 2:
        return []
    schedule = chain_job.schedule
    last_minibatch = chain_job.n_minibatches - 1
    tp_by_stage = {sync.stage: sync for sync in tp_sync}
    factors = dp_lane_factors(topology, placement) if contention else None
    syncs: List[StageAllReduce] = []
    for stage in range(placement.pp):
        grad_bytes = (chain_job.stage_plan.stage(stage).params
                      * job.bytes_per_element)
        if grad_bytes <= 0:
            continue
        buckets = gradient_buckets(grad_bytes, config.bucket_bytes)
        drain = schedule.backward_drain(stage, last_minibatch)
        device = device_of(stage)
        window = drain * chain_job.backward_time(stage, device)
        if contention:
            stage_tp = tp_by_stage.get(stage)
            if stage_tp is not None:
                # The backward half of each in-drain microbatch's TP
                # all-reduces competes with the gradient buckets.
                window = max(
                    0.0, window - 0.5 * drain * stage_tp.microbatch_seconds)
        worst: Optional[StageAllReduce] = None
        for tp_rank in range(placement.tp):
            group = placement.dp_group(tp_rank, stage)
            times, algorithm = _bucket_times(topology, group, buckets,
                                             config, server)
            if contention:
                factor = factors[(tp_rank, stage)]
                if factor > 1.0:
                    times = [t * factor for t in times]
            exposed = exposed_allreduce_time(buckets, times, window,
                                             overlap=config.overlap)
            candidate = StageAllReduce(
                stage=stage,
                devices=group,
                algorithm=algorithm,
                grad_bytes=grad_bytes,
                n_buckets=len(buckets),
                allreduce_seconds=float(sum(times)),
                exposed_seconds=exposed,
            )
            if worst is None or candidate.exposed_seconds > worst.exposed_seconds:
                worst = candidate
        syncs.append(worst)
    return syncs


@dataclass(frozen=True)
class SyncPricing:
    """Both pricing regimes of one placement's synchronisation planes."""

    tp_sync: Tuple[StageTPSync, ...]
    dp_independent: Tuple[StageAllReduce, ...]
    dp_contended: Tuple[StageAllReduce, ...]
    crosses_fabric: bool

    @property
    def exposed_tp_sync(self) -> float:
        if not self.tp_sync:
            return 0.0
        return max(sync.minibatch_seconds for sync in self.tp_sync)

    @property
    def exposed_dp_independent(self) -> float:
        if not self.dp_independent:
            return 0.0
        return max(sync.exposed_seconds for sync in self.dp_independent)

    @property
    def exposed_dp_contended(self) -> float:
        if not self.dp_contended:
            return 0.0
        return max(sync.exposed_seconds for sync in self.dp_contended)

    @property
    def independent_seconds(self) -> float:
        """Exposed sync tail under the legacy per-plane pricing."""
        return self.exposed_tp_sync + self.exposed_dp_independent

    @property
    def contended_seconds(self) -> float:
        """Exposed sync tail with shared fabric lanes contending."""
        return self.exposed_tp_sync + self.exposed_dp_contended

    @property
    def contention_seconds(self) -> float:
        """What the independent model under-prices (always >= 0)."""
        return self.contended_seconds - self.independent_seconds


def price_sync_planes(placement, topology, job: TrainingJob, config, server,
                      chain_job: TrainingJob,
                      device_of: Optional[Callable[[int], int]] = None
                      ) -> SyncPricing:
    """Price both sync planes of a placement, analytically.

    The autoplan pricing layer's entry point: no simulation has
    happened, so ``device_of`` defaults to the identity stage -> device
    map of a freshly placed chain.
    """
    if device_of is None:
        device_of = lambda stage: stage  # noqa: E731
    tp_sync = tuple(tp_sync_plane(placement, topology, job, config, chain_job))
    dp_kwargs = dict(tp_sync=tp_sync)
    independent = tuple(dp_sync_plane(
        placement, topology, job, config, server, chain_job, device_of,
        contention=False, **dp_kwargs))
    contended = tuple(dp_sync_plane(
        placement, topology, job, config, server, chain_job, device_of,
        contention=True, **dp_kwargs))
    crosses = False
    if placement.dp > 1:
        for stage in range(placement.pp):
            for tp_rank in range(placement.tp):
                group = placement.dp_group(tp_rank, stage)
                if group_span(topology, group) > 1:
                    crosses = True
                    break
            if crosses:
                break
    return SyncPricing(tp_sync=tp_sync, dp_independent=independent,
                       dp_contended=contended, crosses_fabric=crosses)
