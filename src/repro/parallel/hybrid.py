"""Hybrid data x pipeline parallelism over one multi-GPU server.

``run_hybrid`` splits the server into ``dp`` replica groups (see
:mod:`repro.parallel.placement`), runs the full memory-managed
pipeline inside each replica through the existing system facade, and
layers DDP-style gradient synchronisation on top: per-stage gradient
buckets all-reduce across the replicas' stage groups, overlapping
with the backward drain of the pipeline schedule.

Modelling choices, deliberately explicit:

* the job spec is *per replica* (weak scaling): every replica
  processes ``samples_per_minibatch`` samples, so hybrid throughput
  is ``dp * samples_per_minibatch / minibatch_time``;
* replicas are homogeneous, so the hybrid minibatch time is the
  slowest replica plus the worst stage's exposed all-reduce tail —
  synchronous DP applied to PipeDream is an approximation (real
  PipeDream would version weights), noted in ``docs/collectives.md``;
* each replica's planner reserves ``2 * bucket_bytes`` of GPU memory
  for double-buffered bucket staging (wired through
  ``Planner(reserve_bytes=...)``), and the same reserve is added to
  the reported per-GPU peaks.

``run_hybrid`` (like ``run_cluster``) executes one *given* shape;
:mod:`repro.autoplan` searches the shape grid and calls into these
facades only for its simulated frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.job import TrainingJob
from repro.collectives.cost import best_all_reduce, collective_time
from repro.collectives.lowering import simulate_collective_time
from repro.collectives.schedule import ALL_REDUCE_ALGORITHMS, all_reduce_schedule
from repro.parallel.bucketing import (
    GradientBucket,
    exposed_allreduce_time,
    gradient_buckets,
)
from repro.parallel.placement import (
    PLACEMENT_MODES,
    ReplicaPlacement,
    replica_placement,
    sub_server,
)

COLLECTIVE_MODES = ("analytic", "simulate")
DEFAULT_BUCKET_BYTES = 25 * 1024 * 1024


@dataclass(frozen=True)
class HybridConfig:
    """Knobs of one hybrid DP x PP execution (hashable, picklable)."""

    dp: int = 2
    algorithm: str = "auto"               # all-reduce algorithm or "auto"
    bucket_bytes: int = DEFAULT_BUCKET_BYTES
    overlap: bool = True
    collective_mode: str = "analytic"     # "analytic" | "simulate"
    placement_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.dp < 1:
            raise ConfigurationError(
                f"data-parallel degree must be >= 1, got {self.dp}")
        if self.bucket_bytes <= 0:
            raise ConfigurationError(
                f"bucket bytes must be positive, got {self.bucket_bytes}")
        if self.algorithm != "auto" and self.algorithm not in ALL_REDUCE_ALGORITHMS:
            raise ConfigurationError(
                f"unknown all-reduce algorithm {self.algorithm!r}; options: "
                f"{('auto',) + ALL_REDUCE_ALGORITHMS}")
        if self.collective_mode not in COLLECTIVE_MODES:
            raise ConfigurationError(
                f"unknown collective mode {self.collective_mode!r}; "
                f"options: {COLLECTIVE_MODES}")
        if self.placement_mode not in PLACEMENT_MODES:
            raise ConfigurationError(
                f"unknown placement mode {self.placement_mode!r}; "
                f"options: {PLACEMENT_MODES}")


@dataclass(frozen=True)
class StageAllReduce:
    """Gradient synchronisation accounting for one pipeline stage."""

    stage: int
    devices: Tuple[int, ...]
    algorithm: str
    grad_bytes: int
    n_buckets: int
    allreduce_seconds: float    # total wire time of all buckets
    exposed_seconds: float      # tail left after backward overlap


@dataclass
class HybridResult:
    """Replica runs plus the DP synchronisation layered on top."""

    job: TrainingJob
    config: HybridConfig
    system: str
    placement: ReplicaPlacement
    replicas: List            # MPressResult per replica
    stage_allreduce: List[StageAllReduce]

    @property
    def ok(self) -> bool:
        return all(replica.ok for replica in self.replicas)

    @property
    def dp(self) -> int:
        return self.placement.dp

    @property
    def exposed_allreduce(self) -> float:
        if not self.stage_allreduce:
            return 0.0
        return max(sync.exposed_seconds for sync in self.stage_allreduce)

    @property
    def replica_minibatch_time(self) -> float:
        return max(
            replica.simulation.minibatch_time for replica in self.replicas)

    @property
    def minibatch_time(self) -> float:
        return self.replica_minibatch_time + self.exposed_allreduce

    @property
    def makespan(self) -> float:
        longest = max(replica.simulation.makespan for replica in self.replicas)
        return longest + self.job.n_minibatches * self.exposed_allreduce

    @property
    def samples_per_second(self) -> float:
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        return self.dp * self.job.samples_per_minibatch / self.minibatch_time

    @property
    def tflops(self) -> float:
        if not self.ok or self.minibatch_time <= 0:
            return 0.0
        replica_flops = self.replicas[0].job.minibatch_flops()
        return self.dp * replica_flops / self.minibatch_time / 1e12

    @property
    def oom(self) -> Optional[str]:
        for index, replica in enumerate(self.replicas):
            if not replica.ok:
                return f"replica {index}: {replica.simulation.oom}"
        return None

    def peak_memory_per_gpu(self) -> List[int]:
        """Per-GPU peaks on the *full* server (bucket staging added)."""
        peaks = [0] * self.job.server.n_gpus
        staging = 2 * self.config.bucket_bytes if self.dp > 1 else 0
        for group, replica in zip(self.placement.groups, self.replicas):
            if not replica.ok:
                continue
            for local, peak in enumerate(replica.simulation.peak_memory_per_gpu):
                peaks[group[local]] = int(peak) + staging
        return peaks


def _stage_sync(job: TrainingJob, config: HybridConfig,
                placement: ReplicaPlacement, replica) -> List[StageAllReduce]:
    """Per-stage bucket all-reduce accounting against replica 0."""
    server = job.server
    topology = server.topology
    stages = placement.stages_per_replica
    schedule = replica.job.schedule
    last_minibatch = replica.job.n_minibatches - 1
    syncs: List[StageAllReduce] = []
    for stage in range(stages):
        group = placement.stage_group(stage)
        grad_bytes = (replica.job.stage_plan.stage(stage).params
                      * job.bytes_per_element)
        if grad_bytes <= 0:
            continue
        buckets = gradient_buckets(grad_bytes, config.bucket_bytes)
        times, algorithm = _bucket_times(topology, group, buckets, config,
                                         server)
        drain = schedule.backward_drain(stage, last_minibatch)
        device = replica.plan.device_of(stage)
        window = drain * replica.job.backward_time(stage, device)
        exposed = exposed_allreduce_time(buckets, times, window,
                                         overlap=config.overlap)
        syncs.append(StageAllReduce(
            stage=stage,
            devices=group,
            algorithm=algorithm,
            grad_bytes=grad_bytes,
            n_buckets=len(buckets),
            allreduce_seconds=float(sum(times)),
            exposed_seconds=exposed,
        ))
    return syncs


def _bucket_times(topology, group, buckets: Tuple[GradientBucket, ...],
                  config: HybridConfig, server) -> Tuple[List[float], str]:
    """Per-bucket all-reduce seconds (bucket sizes dedupe to <= 2)."""
    by_size: Dict[int, Tuple[float, str]] = {}
    for bucket in buckets:
        if bucket.size in by_size:
            continue
        if config.algorithm == "auto":
            schedule, _ = best_all_reduce(topology, group, bucket.size,
                                          pcie=server.pcie)
        else:
            schedule = all_reduce_schedule(topology, group, bucket.size,
                                           config.algorithm)
        if config.collective_mode == "simulate":
            seconds = simulate_collective_time(server, schedule)
        else:
            seconds = collective_time(schedule, topology, server.pcie)
        by_size[bucket.size] = (seconds, schedule.algorithm)
    times = [by_size[bucket.size][0] for bucket in buckets]
    algorithm = by_size[buckets[0].size][1]
    return times, algorithm


def run_hybrid(job: TrainingJob, config: Optional[HybridConfig] = None,
               system: str = "mpress") -> HybridResult:
    """Run a hybrid DP x PP job: ``dp`` replicas plus gradient sync."""
    from repro.core.mpress import run_system

    if config is None:
        config = HybridConfig()
    placement = replica_placement(job.server.topology, config.dp,
                                  mode=config.placement_mode)
    if config.dp == 1:
        replica = run_system(job, system)
        return HybridResult(job=job, config=config, system=system,
                            placement=placement, replicas=[replica],
                            stage_allreduce=[])
    reserve = 2 * config.bucket_bytes
    replicas = []
    for group in placement.groups:
        replica_job = replace(job, server=sub_server(job.server, group))
        replicas.append(run_system(replica_job, system,
                                   reserve_bytes=reserve))
    syncs = _stage_sync(job, config, placement, replicas[0])
    return HybridResult(job=job, config=config, system=system,
                        placement=placement, replicas=replicas,
                        stage_allreduce=syncs)
