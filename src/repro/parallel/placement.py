"""Replica placement: carve a server into DP replica sub-servers.

A hybrid DP x PP run splits the server's GPUs into ``dp`` equal
replica groups; each group runs the full pipeline and the groups
all-reduce gradients stage-by-stage.  Where the cut falls matters on
an asymmetric topology: the all-reduce rings of stage groups should
sit on high-lane pairs, and adjacent pipeline stages inside a
replica should keep their activation traffic on NVLink.

The search scores a handful of candidate layouts (contiguous blocks,
strided, NVLink islands) with the analytic collective model plus the
intra-replica point-to-point cost, both priced on reference message
sizes — cheap enough to run inside the planner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.hardware.server import Server
from repro.hardware.topology import Topology
from repro.collectives.cost import all_reduce_time, pair_transfer_time
from repro.collectives.schedule import islands

# Reference message sizes for scoring layouts: a typical gradient
# bucket and a typical stage-boundary activation tensor.
REFERENCE_ALLREDUCE_BYTES = 64 * 1024 * 1024
REFERENCE_BOUNDARY_BYTES = 16 * 1024 * 1024

PLACEMENT_MODES = ("auto", "contiguous", "strided", "islands")


@dataclass(frozen=True)
class ReplicaPlacement:
    """A chosen layout: ``groups[r][s]`` is replica ``r``'s stage-``s`` GPU."""

    groups: Tuple[Tuple[int, ...], ...]
    mode: str
    allreduce_score: float     # analytic seconds, reference bucket, all stages
    pipeline_score: float      # analytic seconds, adjacent-stage p2p

    @property
    def dp(self) -> int:
        return len(self.groups)

    @property
    def stages_per_replica(self) -> int:
        return len(self.groups[0])

    def stage_group(self, stage: int) -> Tuple[int, ...]:
        """The devices that all-reduce stage ``stage``'s gradients."""
        return tuple(group[stage] for group in self.groups)

    @property
    def score(self) -> float:
        return self.allreduce_score + self.pipeline_score

    @property
    def canonical_key(self) -> Tuple:
        """Total order for deterministic tie-breaking.

        Equal scores resolve alphabetically by mode, then by the group
        tuple — matching the historical first-wins scan over
        ``sorted(layouts)`` while making the preference explicit.
        """
        return (self.score, self.mode, self.groups)


def _candidate_layouts(topology: Topology, dp: int
                       ) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
    """Layout candidates by mode name."""
    n = topology.n_gpus
    size = n // dp
    devices = list(range(n))
    layouts: Dict[str, Tuple[Tuple[int, ...], ...]] = {
        "contiguous": tuple(
            tuple(devices[r * size:(r + 1) * size]) for r in range(dp)
        ),
        "strided": tuple(
            tuple(devices[r + dp * s] for s in range(size)) for r in range(dp)
        ),
    }
    if topology.kind == "direct":
        parts = islands(topology, tuple(devices))
        if len(parts) == dp and all(len(part) == size for part in parts):
            layouts["islands"] = parts
    return layouts


def _score_layout(topology: Topology,
                  groups: Tuple[Tuple[int, ...], ...]) -> Tuple[float, float]:
    size = len(groups[0])
    allreduce = 0.0
    if len(groups) > 1:
        for stage in range(size):
            stage_group = tuple(group[stage] for group in groups)
            allreduce += all_reduce_time(
                topology, stage_group, REFERENCE_ALLREDUCE_BYTES, "auto")
    pipeline = 0.0
    for group in groups:
        for stage in range(size - 1):
            pipeline += pair_transfer_time(
                topology, group[stage], group[stage + 1],
                REFERENCE_BOUNDARY_BYTES)
    return allreduce, pipeline


def replica_placement(topology: Topology, dp: int,
                      mode: str = "auto") -> ReplicaPlacement:
    """Pick the replica layout for ``dp``-way data parallelism."""
    if mode not in PLACEMENT_MODES:
        raise ConfigurationError(
            f"unknown placement mode {mode!r}; expected one of {PLACEMENT_MODES}")
    if dp < 1:
        raise ConfigurationError(f"data-parallel degree must be >= 1, got {dp}")
    n = topology.n_gpus
    if n % dp != 0:
        raise ConfigurationError(
            f"data-parallel degree {dp} does not divide {n} GPUs")
    size = n // dp
    if dp == 1:
        groups = (tuple(range(n)),)
        allreduce, pipeline = _score_layout(topology, groups)
        return ReplicaPlacement(groups=groups, mode="contiguous",
                                allreduce_score=allreduce,
                                pipeline_score=pipeline)
    if size < 2:
        raise ConfigurationError(
            f"hybrid replicas need >= 2 pipeline stages, got {size} "
            f"(dp={dp} on {n} GPUs)")
    layouts = _candidate_layouts(topology, dp)
    if mode != "auto":
        if mode not in layouts:
            raise ConfigurationError(
                f"placement mode {mode!r} unavailable on this topology "
                f"(candidates: {sorted(layouts)})")
        layouts = {mode: layouts[mode]}
    candidates = []
    for name in sorted(layouts):
        groups = layouts[name]
        allreduce, pipeline = _score_layout(topology, groups)
        candidates.append(ReplicaPlacement(groups=groups, mode=name,
                                           allreduce_score=allreduce,
                                           pipeline_score=pipeline))
    # min() over the canonical key: score ties resolve to the same
    # layout on every run and Python version.
    return min(candidates, key=lambda candidate: candidate.canonical_key)


def sub_server(server: Server, devices: Sequence[int]) -> Server:
    """The server a single replica sees: its GPUs, the induced topology.

    Direct topologies keep the lanes between retained pairs (device
    ids remapped to ``0..len-1``); switched fabrics shrink to the
    replica size with the same per-GPU lane budget.  Host memory is
    divided proportionally — replicas share the host — while the
    PCIe and NVMe specs carry over unchanged.
    """
    devices = tuple(devices)
    # A single-GPU carve-out is a valid degenerate replica (a TP rank
    # running a one-stage pipeline); its induced topology has no lanes.
    if len(devices) < 1:
        raise ConfigurationError(
            f"a replica needs >= 1 GPU, got {devices}")
    if len(set(devices)) != len(devices):
        raise ConfigurationError(f"replica devices must be distinct: {devices}")
    for device in devices:
        if not 0 <= device < server.n_gpus:
            raise ConfigurationError(
                f"device {device} outside server ({server.n_gpus} GPUs)")
    topology = server.topology
    if topology.kind == "switched":
        induced = Topology(n_gpus=len(devices), kind="switched",
                           nvlink=topology.nvlink,
                           lane_budget=topology.lane_budget)
    else:
        index = {device: local for local, device in enumerate(devices)}
        kept = set(devices)
        adjacency = {}
        for pair, count in topology.adjacency.items():
            a, b = tuple(pair)
            if a in kept and b in kept:
                adjacency[frozenset((index[a], index[b]))] = count
        induced = Topology(n_gpus=len(devices), kind="direct",
                           nvlink=topology.nvlink,
                           lane_budget=topology.lane_budget,
                           adjacency=adjacency)
    share = max(1, server.host.memory_bytes * len(devices) // server.n_gpus)
    host = replace(server.host, memory_bytes=share)
    label = ",".join(str(device) for device in devices)
    return Server(
        name=f"{server.name}[{label}]",
        gpus=[server.gpus[device] for device in devices],
        topology=induced,
        host=host,
        pcie=server.pcie,
        nvme=server.nvme,
    )
