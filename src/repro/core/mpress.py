"""MPress facade: static planning plus runtime execution.

:class:`MPress` wires the whole Figure 5 pipeline: profile, plan
(with device mapping, cost model, rewriter, emulator iterations),
then execute the plan on the simulated server under real memory
constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.plan import MemorySavingPlan
from repro.core.planner import Planner, PlannerConfig, PlannerReport, baseline_config
from repro.faults.spec import FaultSchedule
from repro.job import TrainingJob
from repro.sim.executor import SimulationResult, simulate


@dataclass
class MPressResult:
    """Plan, planning trajectory, and the strict training run."""

    job: TrainingJob
    plan: MemorySavingPlan
    planner_report: PlannerReport
    simulation: SimulationResult

    @property
    def ok(self) -> bool:
        return self.simulation.ok

    @property
    def tflops(self) -> float:
        return self.simulation.tflops

    @property
    def samples_per_second(self) -> float:
        return self.simulation.samples_per_second


class MPress:
    """The complete system: plan once offline, then train."""

    def __init__(
        self,
        job: TrainingJob,
        config: Optional[PlannerConfig] = None,
        faults: Optional[FaultSchedule] = None,
        reserve_bytes: int = 0,
    ):
        self.job = job
        self.config = config if config is not None else PlannerConfig()
        self.faults = faults
        self.reserve_bytes = reserve_bytes
        self._plan: Optional[MemorySavingPlan] = None
        self._report: Optional[PlannerReport] = None

    def build_plan(self) -> MemorySavingPlan:
        """Run MPress Static (profiler/planner/rewriter/emulator loop)."""
        if self._plan is None:
            planner = Planner(self.job, self.config, faults=self.faults,
                              reserve_bytes=self.reserve_bytes)
            self._plan, self._report = planner.build()
        return self._plan

    @property
    def planner_report(self) -> PlannerReport:
        if self._report is None:
            self.build_plan()
        return self._report

    def run(self) -> MPressResult:
        """Plan, then execute under strict memory constraints."""
        plan = self.build_plan()
        simulation = simulate(
            self.job,
            plan,
            strict=True,
            prefetch_lead=self.config.prefetch_lead,
            faults=self.faults,
        )
        return MPressResult(
            job=self.job,
            plan=plan,
            planner_report=self.planner_report,
            simulation=simulation,
        )


def run_system(
    job: TrainingJob, system: str, faults: Optional[FaultSchedule] = None,
    reserve_bytes: int = 0,
) -> MPressResult:
    """Run one of the paper's five system configurations.

    ``system``: "none" (the original PipeDream/DAPPLE, no memory
    optimization), "recomputation", "gpu-cpu-swap", "d2d-only"
    (MPress with D2D swap only), or "mpress" (all three techniques).
    An optional fault schedule is injected into the training run (and
    informs planning for the planner-backed systems).
    ``reserve_bytes`` shrinks the planner's fit target (hybrid DP
    runs reserve gradient-bucket staging space); "none" has no
    planner, so the reserve is advisory there.
    """
    if system == "none":
        from repro.core.plan import empty_plan
        from repro.core.profiler import Profiler

        plan = empty_plan(job.n_stages)
        simulation = simulate(job, plan, strict=True, faults=faults)
        profile = Profiler(job).run()
        report = PlannerReport(
            profile=profile,
            device_map=plan.device_map,
            mapping=None,
            feasible=not any(profile.overflow(job.server.gpu_memory)),
        )
        return MPressResult(
            job=job, plan=plan, planner_report=report, simulation=simulation
        )
    return MPress(job, baseline_config(system), faults=faults,
                  reserve_bytes=reserve_bytes).run()
