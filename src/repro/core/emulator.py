"""Emulator: run one instrumented iteration and report back (Fig. 5, step 5).

The emulator executes a tentative plan for a single training
iteration set in non-strict mode, measuring the achieved iteration
time and the amount of memory still overflowing — the feedback the
planner compares against previous configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.plan import Action, MemorySavingPlan
from repro.core.rewriter import InstrumentedProgram
from repro.job import TrainingJob
from repro.sim.executor import SimulationResult
from repro.sim.incremental import IncrementalSimulator
from repro.sim.ir import ExecOptions
from repro.sim.lowering import Lowering


@dataclass
class EmulationReport:
    """What one emulated iteration learned about a plan."""

    plan: MemorySavingPlan
    minibatch_time: float
    device_peaks: List[int]
    overflowed_devices: List[int]
    saved_by_action: Dict[Action, int]
    result: SimulationResult

    @property
    def fits(self) -> bool:
        return not self.overflowed_devices

    def slowdown_vs(self, baseline_time: float) -> float:
        """Relative extra time vs the uncompacted baseline."""
        if baseline_time <= 0:
            return 0.0
        return self.minibatch_time / baseline_time - 1.0


class Emulator:
    """Runs plans through the simulator in measurement mode.

    The plan-independent lowering skeleton (data-flow program, tensor
    classification) is built once at construction and shared across
    every :meth:`run` — the planner's tighten/refine loop only pays
    for per-plan instruction emission and interpretation.  Execution
    goes through an :class:`~repro.sim.incremental.IncrementalSimulator`:
    consecutive candidate programs from the shared lowering reuse the
    engine state of their common prefix, and a candidate identical to
    the previous one costs nothing (docs/fastpath.md).
    """

    def __init__(self, job: TrainingJob, prefetch_lead: int = 2):
        self.job = job
        self.prefetch_lead = prefetch_lead
        self.options = ExecOptions(strict=False, prefetch_lead=prefetch_lead)
        self._lowering = Lowering(job, self.options)
        self._simulator = IncrementalSimulator()
        self.n_emulations = 0

    @property
    def n_incremental_resumes(self) -> int:
        return self._simulator.n_resumed

    @property
    def n_memoized(self) -> int:
        return self._simulator.n_memoized

    def run(self, plan: MemorySavingPlan) -> EmulationReport:
        self.n_emulations += 1
        result = self._simulator.run(self._lowering.lower(plan))
        capacity = self.job.server.gpu_memory
        peaks = result.memory.peaks()
        overflowed = [dev for dev, peak in enumerate(peaks) if peak > capacity]
        return EmulationReport(
            plan=plan,
            minibatch_time=result.minibatch_time,
            device_peaks=peaks,
            overflowed_devices=overflowed,
            saved_by_action=plan.saved_by_action(),
            result=result,
        )

    def run_program(self, program: InstrumentedProgram) -> EmulationReport:
        return self.run(program.plan)
