"""Profiler: collect the basic stats the planner needs (Fig. 5, steps 1-2).

The profiler runs one training iteration of the target job with *no*
memory compaction and unlimited-capacity accounting (the emulator's
non-strict mode), then extracts tensor sizes, per-stage compute
latencies, per-tensor live intervals, per-stage peak memory, and the
Table I memory breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.plan import empty_plan
from repro.graph.liveness import LiveInterval, live_intervals
from repro.graph.tensor import TensorClass, TensorKind, tensor_classes_for
from repro.job import TrainingJob
from repro.sim.executor import SimulationResult, simulate


@dataclass
class ProfileStats:
    """Everything MPress Static learns from the profiling run."""

    job: TrainingJob
    classes: List[TensorClass]
    intervals: Dict[tuple, LiveInterval]
    stage_peaks: List[int]
    baseline: SimulationResult

    @property
    def baseline_minibatch_time(self) -> float:
        return self.baseline.minibatch_time

    def classes_of_stage(self, stage: int) -> List[TensorClass]:
        return [cls for cls in self.classes if cls.stage == stage]

    def overflow(self, per_gpu_capacity: int) -> List[int]:
        """Per-stage bytes beyond capacity (the D2D export demand)."""
        return [max(0, peak - per_gpu_capacity) for peak in self.stage_peaks]

    def spare(self, per_gpu_capacity: int) -> List[int]:
        """Per-stage bytes of unused capacity (the D2D import supply)."""
        return [max(0, per_gpu_capacity - peak) for peak in self.stage_peaks]

    def total_demand(self) -> int:
        """Total GPU memory the uncompacted job needs (Table II)."""
        return sum(self.stage_peaks)

    def imbalance(self) -> float:
        """Most-used over least-used stage peak (the Figure 2 ratio)."""
        least = min(self.stage_peaks)
        if least <= 0:
            return float("inf")
        return max(self.stage_peaks) / least

    def memory_breakdown(self) -> Dict[str, int]:
        """Bytes by data type (Table I's categories)."""
        breakdown = {"activation": 0, "optimizer": 0, "params+grads": 0}
        for cls in self.classes:
            if cls.kind is TensorKind.ACTIVATION:
                breakdown["activation"] += cls.peak_bytes
            elif cls.kind is TensorKind.OPTIMIZER_STATE:
                breakdown["optimizer"] += cls.peak_bytes
            else:
                breakdown["params+grads"] += cls.peak_bytes
        return breakdown

    def memory_breakdown_percent(self) -> Dict[str, float]:
        breakdown = self.memory_breakdown()
        total = sum(breakdown.values())
        if total == 0:
            return {key: 0.0 for key in breakdown}
        return {key: 100.0 * value / total for key, value in breakdown.items()}


class Profiler:
    """Runs the profiling iteration and assembles :class:`ProfileStats`."""

    def __init__(self, job: TrainingJob):
        self.job = job

    def run(self) -> ProfileStats:
        job = self.job
        plan = empty_plan(job.n_stages)
        result = simulate(job, plan, strict=False)
        classes = tensor_classes_for(
            job.stage_plan, job.schedule, job.microbatch_size, job.bytes_per_element
        )
        stage_of_device = {device: stage for stage, device in enumerate(plan.device_map)}
        intervals = live_intervals(result.trace, classes, stage_of_device)
        stage_peaks = [
            result.memory.gpu(plan.device_map[stage]).peak for stage in range(job.n_stages)
        ]
        return ProfileStats(
            job=job,
            classes=classes,
            intervals=intervals,
            stage_peaks=stage_peaks,
            baseline=result,
        )
