"""MPress core: the paper's contribution.

Static part (Figure 5): profiler -> planner -> rewriter -> emulator,
iterating to a memory-saving plan.  Key techniques: D2D swap with
data striping (Section III-C), device-mapping search (Figure 6), and
memory-compaction planning combining D2D swap, GPU-CPU swap, and
recomputation (Section III-D).

Attributes are resolved lazily so low-level modules (``core.plan``,
``core.striping``) can be imported by the simulator without pulling
the whole planning stack in (which would be a circular import).
"""

from __future__ import annotations

_EXPORTS = {
    "Action": "repro.core.plan",
    "PlanEntry": "repro.core.plan",
    "MemorySavingPlan": "repro.core.plan",
    "empty_plan": "repro.core.plan",
    "validate_plan": "repro.core.plan",
    "StripeBlock": "repro.core.striping",
    "StripePlan": "repro.core.striping",
    "build_stripe_plan": "repro.core.striping",
    "distribute_weighted": "repro.core.striping",
    "MappingResult": "repro.core.device_mapping",
    "search_device_mapping": "repro.core.device_mapping",
    "CostModel": "repro.core.cost_model",
    "TensorCosts": "repro.core.cost_model",
    "Profiler": "repro.core.profiler",
    "ProfileStats": "repro.core.profiler",
    "Rewriter": "repro.core.rewriter",
    "InstrumentedProgram": "repro.core.rewriter",
    "Emulator": "repro.core.emulator",
    "EmulationReport": "repro.core.emulator",
    "Planner": "repro.core.planner",
    "PlannerConfig": "repro.core.planner",
    "PlannerReport": "repro.core.planner",
    "baseline_config": "repro.core.planner",
    "MPress": "repro.core.mpress",
    "MPressResult": "repro.core.mpress",
    "run_system": "repro.core.mpress",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
