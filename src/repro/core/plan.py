"""Memory-saving plan: which action each tensor class receives.

The plan is the artifact MPress Static produces and MPress Runtime
executes (Figure 5).  Each reducible tensor class is assigned one of
the three memory compaction techniques (or left resident), with D2D
entries carrying their stripe plans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PlanError
from repro.core.striping import StripePlan
from repro.graph.tensor import TensorClass, TensorKind


class Action(enum.Enum):
    NONE = "none"
    RECOMPUTE = "recompute"
    CPU_SWAP = "cpu-swap"
    D2D_SWAP = "d2d-swap"


@dataclass(frozen=True)
class PlanEntry:
    """Action assigned to one tensor class.

    ``tier`` applies to CPU swaps: ``"host"`` keeps the tensor in
    pinned host memory; ``"nvme"`` spills it onward to NVMe (the
    ZeRO-Infinity-style escape hatch when host memory cannot hold
    every in-flight swapped tensor).
    """

    cls: TensorClass
    action: Action
    stripe: Optional[StripePlan] = None
    tier: str = "host"

    def __post_init__(self) -> None:
        if self.tier not in ("host", "nvme"):
            raise PlanError(f"{self.cls.key}: unknown swap tier {self.tier!r}")
        if self.tier == "nvme" and self.action is not Action.CPU_SWAP:
            raise PlanError(f"{self.cls.key}: NVMe tier only applies to CPU swaps")
        if self.action is Action.RECOMPUTE and not self.cls.recomputable:
            raise PlanError(
                f"{self.cls.key}: recomputation only applies to activations "
                "(Section II-D)"
            )
        if self.action is Action.D2D_SWAP:
            if self.stripe is None:
                raise PlanError(f"{self.cls.key}: D2D swap entry needs a stripe plan")
            # Partial-tensor D2D is allowed: striping splits at byte
            # granularity, so a plan may park only part of a tensor
            # when importer spare is tight.
            if self.stripe.tensor_bytes > self.cls.size:
                raise PlanError(
                    f"{self.cls.key}: stripe covers {self.stripe.tensor_bytes} bytes, "
                    f"tensor instance is only {self.cls.size}"
                )
        elif self.stripe is not None:
            raise PlanError(f"{self.cls.key}: stripe plan without D2D action")

    @property
    def saved_bytes(self) -> int:
        """Peak bytes this entry removes from the owning device."""
        if self.action is Action.NONE:
            return 0
        if self.action is Action.D2D_SWAP and self.stripe is not None:
            return self.stripe.tensor_bytes * self.cls.instances
        return self.cls.peak_bytes


@dataclass
class MemorySavingPlan:
    """Complete plan for one training job."""

    device_map: List[int]  # stage -> GPU index
    entries: Dict[tuple, PlanEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.device_map)) != len(self.device_map):
            raise PlanError("device map assigns two stages to one GPU")

    def assign(self, entry: PlanEntry) -> None:
        self.entries[entry.cls.key] = entry

    def action_for(self, cls: TensorClass) -> Action:
        entry = self.entries.get(cls.key)
        return entry.action if entry is not None else Action.NONE

    def entry_for(self, cls: TensorClass) -> Optional[PlanEntry]:
        return self.entries.get(cls.key)

    def device_of(self, stage: int) -> int:
        if not 0 <= stage < len(self.device_map):
            raise PlanError(f"stage {stage} outside device map")
        return self.device_map[stage]

    # -- reporting (Table IV) ---------------------------------------------

    def saved_by_action(self) -> Dict[Action, int]:
        """Total peak bytes saved, per technique."""
        totals = {action: 0 for action in Action if action is not Action.NONE}
        for entry in self.entries.values():
            if entry.action is not Action.NONE:
                totals[entry.action] += entry.saved_bytes
        return totals

    def stages_by_action(self) -> Dict[Action, List[int]]:
        """Which stages each technique was applied to (Table IV rows)."""
        stages: Dict[Action, set] = {action: set() for action in Action}
        for entry in self.entries.values():
            stages[entry.action].add(entry.cls.stage)
        return {action: sorted(s) for action, s in stages.items()}

    def d2d_bytes_into(self, importer: int) -> int:
        """Peak bytes this plan parks on ``importer`` via D2D swap."""
        total = 0
        for entry in self.entries.values():
            if entry.action is Action.D2D_SWAP and entry.stripe is not None:
                total += entry.stripe.bytes_to(importer) * entry.cls.instances
        return total

    def summary(self) -> str:
        lines = [f"device map: {self.device_map}"]
        saved = self.saved_by_action()
        total = sum(saved.values())
        for action, amount in saved.items():
            share = (100.0 * amount / total) if total else 0.0
            lines.append(f"  {action.value:<10} saves {amount / 2**30:8.1f} GiB ({share:4.1f}%)")
        return "\n".join(lines)


def empty_plan(n_stages: int, device_map: Optional[List[int]] = None) -> MemorySavingPlan:
    """A no-compaction plan with the in-order device mapping."""
    if device_map is None:
        device_map = list(range(n_stages))
    return MemorySavingPlan(device_map=device_map)


def validate_plan(plan: MemorySavingPlan, classes: List[TensorClass]) -> None:
    """Cross-check a plan against the job's tensor classes.

    Ensures every entry refers to a real class, D2D importers differ
    from exporters, and irreducible working state is untouched.
    """
    known = {cls.key: cls for cls in classes}
    for key, entry in plan.entries.items():
        cls = known.get(key)
        if cls is None:
            raise PlanError(f"plan entry {key} refers to an unknown tensor class")
        if cls.kind is TensorKind.WORKING_STATE and entry.action is not Action.NONE:
            raise PlanError(f"{key}: working parameters/gradients cannot be reduced")
        if entry.action is Action.D2D_SWAP and entry.stripe is not None:
            exporter = plan.device_of(cls.stage)
            if entry.stripe.exporter != exporter:
                raise PlanError(
                    f"{key}: stripe exporter {entry.stripe.exporter} is not the "
                    f"stage's device {exporter}"
                )
            if exporter in entry.stripe.importers:
                raise PlanError(f"{key}: a tensor cannot D2D-swap to its own device")
