"""Data striping for D2D swap (Section III-C).

A tensor swapped device-to-device is partitioned into sub-blocks
transmitted in parallel over disjoint NVLink lanes.  On symmetric
topologies (DGX-2) the sub-blocks are equally sized; on asymmetric
topologies (DGX-1) block sizes are *weighted* by the per-importer
lane counts so every lane finishes at the same time — e.g. GPU0
sends twice as much to GPU3 (two bricks) as to GPU1 (one).

A :class:`StripePlan` also acts as the metadata-table entry the
runtime keeps per swapped tensor: number of sub-blocks, their sizes,
and the target devices — exactly the record Section III-C describes
for guiding the later swap-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import PlanError
from repro.hardware.bandwidth import transfer_time
from repro.hardware.topology import ChannelKey, Topology


@dataclass(frozen=True)
class StripeBlock:
    """One sub-block of a striped tensor."""

    importer: int
    size: int
    lane: ChannelKey       # exporter -> importer lane
    return_lane: ChannelKey  # importer -> exporter lane (swap-in path)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise PlanError("stripe blocks must carry positive bytes")


@dataclass(frozen=True)
class StripePlan:
    """Metadata-table entry: how one tensor stripes across peers."""

    exporter: int
    tensor_bytes: int
    blocks: Tuple[StripeBlock, ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise PlanError("a stripe plan needs at least one block")
        total = sum(block.size for block in self.blocks)
        if total != self.tensor_bytes:
            raise PlanError(
                f"stripe blocks sum to {total} bytes, tensor is {self.tensor_bytes}"
            )

    @property
    def importers(self) -> List[int]:
        return sorted({block.importer for block in self.blocks})

    def bytes_to(self, importer: int) -> int:
        return sum(block.size for block in self.blocks if block.importer == importer)

    def one_way_time(self, topology: Topology) -> float:
        """Completion time of one striped direction.

        Blocks sharing a lane (switched topologies route several
        importers' shares over the same egress lanes) serialize, so
        the cost is the slowest *lane*, not the slowest block.
        """
        per_lane: Dict[ChannelKey, float] = {}
        for block in self.blocks:
            per_lane[block.lane] = per_lane.get(block.lane, 0.0) + transfer_time(
                block.size, topology.nvlink, lanes=1
            )
        return max(per_lane.values())

    def round_trip_time(self, topology: Topology) -> float:
        """Swap-out plus swap-in cost (what the cost model charges)."""
        return 2.0 * self.one_way_time(topology)


def distribute_weighted(size: int, lane_counts: Dict[int, int]) -> Dict[int, int]:
    """Split ``size`` bytes across importers proportionally to lanes.

    Every importer with at least one lane receives a share
    proportional to its lane count; rounding residue goes to the
    best-connected importer so the total is exact.

    >>> distribute_weighted(300, {1: 1, 3: 2})
    {1: 100, 3: 200}
    """
    if size <= 0:
        raise PlanError("cannot stripe a non-positive tensor")
    eligible = {imp: lanes for imp, lanes in lane_counts.items() if lanes > 0}
    if not eligible:
        raise PlanError("no importer has NVLink lanes to the exporter")
    total_lanes = sum(eligible.values())
    shares = {
        imp: (size * lanes) // total_lanes for imp, lanes in sorted(eligible.items())
    }
    residue = size - sum(shares.values())
    best = max(sorted(eligible), key=lambda imp: eligible[imp])
    shares[best] += residue
    return {imp: share for imp, share in shares.items() if share > 0}


def build_stripe_plan(
    topology: Topology,
    exporter: int,
    importer_budgets: Dict[int, int],
    tensor_bytes: int,
    striping: bool = True,
) -> StripePlan:
    """Stripe ``tensor_bytes`` from ``exporter`` into peers' spare memory.

    ``importer_budgets`` caps the bytes each peer may absorb (its
    spare memory assigned by device mapping).  With ``striping``
    disabled — the Figure 9 ablation baseline — the whole tensor goes
    to the single importer with the most budget over one lane.
    """
    budgets = {
        imp: budget
        for imp, budget in importer_budgets.items()
        if budget > 0 and topology.lanes(exporter, imp) > 0
    }
    if not budgets:
        raise PlanError(f"exporter {exporter}: no NVLink-reachable importer budget")
    if sum(budgets.values()) < tensor_bytes:
        raise PlanError(
            f"exporter {exporter}: importer budgets "
            f"({sum(budgets.values())}) cannot hold {tensor_bytes} bytes"
        )

    if not striping:
        importer = max(sorted(budgets), key=lambda imp: budgets[imp])
        if budgets[importer] < tensor_bytes:
            raise PlanError("without striping the tensor must fit one importer")
        lane = topology.lane_channels(exporter, importer)[0]
        back = topology.lane_channels(importer, exporter)[0]
        block = StripeBlock(importer=importer, size=tensor_bytes, lane=lane, return_lane=back)
        return StripePlan(exporter=exporter, tensor_bytes=tensor_bytes, blocks=(block,))

    lane_counts = {imp: topology.lanes(exporter, imp) for imp in budgets}
    shares = distribute_weighted(tensor_bytes, lane_counts)
    shares = _respect_budgets(shares, budgets, tensor_bytes)

    blocks: List[StripeBlock] = []
    for importer, share in sorted(shares.items()):
        out_lanes = topology.lane_channels(exporter, importer)
        in_lanes = topology.lane_channels(importer, exporter)
        lanes_used = min(topology.lanes(exporter, importer), len(out_lanes))
        blocks.extend(
            _lane_blocks(importer, share, out_lanes[:lanes_used], in_lanes[:lanes_used])
        )
    return StripePlan(exporter=exporter, tensor_bytes=tensor_bytes, blocks=tuple(blocks))


def _respect_budgets(
    shares: Dict[int, int], budgets: Dict[int, int], total: int
) -> Dict[int, int]:
    """Clamp proportional shares to budgets, spilling overflow to slack."""
    clamped = {imp: min(share, budgets[imp]) for imp, share in shares.items()}
    overflow = total - sum(clamped.values())
    if overflow > 0:
        for imp in sorted(budgets, key=lambda i: budgets[i] - clamped.get(i, 0), reverse=True):
            slack = budgets[imp] - clamped.get(imp, 0)
            if slack <= 0:
                continue
            used = min(slack, overflow)
            clamped[imp] = clamped.get(imp, 0) + used
            overflow -= used
            if overflow == 0:
                break
    if overflow > 0:
        raise PlanError("importer budgets cannot absorb the tensor")
    return {imp: share for imp, share in clamped.items() if share > 0}


def _lane_blocks(importer, share, out_lanes, in_lanes) -> List[StripeBlock]:
    """Split one importer's share evenly over its lanes."""
    n = len(out_lanes)
    base = share // n
    blocks = []
    remaining = share
    for k, (out_lane, in_lane) in enumerate(zip(out_lanes, in_lanes)):
        size = base if k < n - 1 else remaining
        remaining -= size
        if size > 0:
            blocks.append(
                StripeBlock(importer=importer, size=size, lane=out_lane, return_lane=in_lane)
            )
    return blocks
