"""Device-mapping search (the paper's Figure 6 algorithm).

Inter-operator training is agnostic to *which* GPU hosts which stage,
but D2D swap is not: an overflowing stage must be NVLink-adjacent to
peers with spare memory, and on the asymmetric DGX-1 topology the
per-pair lane counts differ.  The search enumerates stage-to-device
mappings, assigns spare memory from light GPUs to neighbouring
overflowed GPUs, and scores each (mapping, assignment) pair by the
ratio of revenue (overflow bytes placed, weighted toward the most
pressured exporters) to cost (the maximal exporter D2D transfer
time) — higher is better (Fig. 6, line 22).

On symmetric (switched) topologies every mapping is equivalent, so
the search short-circuits to the identity mapping, as the paper
notes ("randomly maps stages to devices and aggressively uses all
NVLinks").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError
from repro.hardware.topology import Topology


@dataclass(frozen=True)
class MappingResult:
    """Outcome of the search."""

    device_map: List[int]                       # stage -> device
    score: float
    placed_fraction: float                      # overflow bytes with a home
    assignments: Dict[int, Dict[int, int]]      # exporter stage -> {importer stage: bytes}
    mappings_evaluated: int = 0

    def importer_budget(self, importer_stage: int) -> int:
        """Total bytes assigned into one importing stage."""
        return sum(
            alloc.get(importer_stage, 0) for alloc in self.assignments.values()
        )


@dataclass
class _Candidate:
    score: float = -1.0
    placed: float = 0.0
    device_map: Optional[Tuple[int, ...]] = None
    assignments: Dict[int, Dict[int, int]] = field(default_factory=dict)


@dataclass(frozen=True)
class _Evaluation:
    assignments: Dict[int, Dict[int, int]]
    placed_fraction: float
    weighted_revenue: float
    max_transfer_seconds: float


def assign_spare_memory(
    topology: Topology,
    device_map: Tuple[int, ...],
    overflow: List[int],
    spare: List[int],
) -> _Evaluation:
    """Spare-memory assignment for one fixed mapping (Fig. 6, assign_mem).

    Exporters claim importer spare in order of decreasing overflow,
    splitting each exporter's demand across its NVLink neighbours
    proportionally to lane counts (water-filling against remaining
    budgets).
    """
    n = len(device_map)
    lane_bandwidth = topology.nvlink.sustained_bandwidth
    remaining = {s: spare[s] for s in range(n) if spare[s] > 0}
    assignments: Dict[int, Dict[int, int]] = {}
    total_overflow = sum(overflow)
    placed_total = 0
    weighted_revenue = 0.0
    max_seconds = 0.0

    exporters = sorted(
        (s for s in range(n) if overflow[s] > 0), key=lambda s: -overflow[s]
    )
    for exporter in exporters:
        e_dev = device_map[exporter]
        lanes = {
            imp: topology.lanes(e_dev, device_map[imp])
            for imp in remaining
            if topology.lanes(e_dev, device_map[imp]) > 0
        }
        if not lanes:
            continue
        demand = overflow[exporter]
        alloc: Dict[int, int] = {}
        # Water-fill: repeat proportional splitting over unclamped
        # importers until demand is placed or budgets exhaust.
        active = dict(lanes)
        while demand > 0 and active:
            total_lanes = sum(active.values())
            progressed = False
            for imp, lane in sorted(active.items()):
                slack = remaining[imp] - alloc.get(imp, 0)
                take = min(slack, max(1, (demand * lane) // total_lanes), demand)
                if take <= 0:
                    continue
                alloc[imp] = alloc.get(imp, 0) + take
                demand -= take
                progressed = True
                if demand <= 0:
                    break
            active = {
                imp: lane
                for imp, lane in active.items()
                if remaining[imp] - alloc.get(imp, 0) > 0
            }
            if not progressed:
                break
        if not alloc:
            continue
        assignments[exporter] = alloc
        for imp, amount in alloc.items():
            remaining[imp] -= amount
            if remaining[imp] <= 0:
                del remaining[imp]
        placed = sum(alloc.values())
        placed_total += placed
        # Revenue weights placed bytes by the exporter's share of the
        # total pressure, so relieving the most-overflowed stage wins.
        weight = overflow[exporter] / total_overflow if total_overflow else 0.0
        weighted_revenue += placed * (1.0 + weight)
        seconds = max(
            amount / (topology.lanes(e_dev, device_map[imp]) * lane_bandwidth)
            for imp, amount in alloc.items()
        )
        max_seconds = max(max_seconds, seconds)

    placed_fraction = placed_total / total_overflow if total_overflow else 1.0
    return _Evaluation(
        assignments=assignments,
        placed_fraction=placed_fraction,
        weighted_revenue=weighted_revenue,
        max_transfer_seconds=max_seconds,
    )


def _score(evaluation: _Evaluation) -> float:
    """Revenue-to-cost ratio (Fig. 6, line 22)."""
    if evaluation.weighted_revenue <= 0:
        return 0.0
    return evaluation.weighted_revenue / (evaluation.max_transfer_seconds + 1e-3)


def search_device_mapping(
    topology: Topology,
    overflow: List[int],
    spare: List[int],
    mode: str = "auto",
    max_mappings: Optional[int] = None,
) -> MappingResult:
    """Find the stage-to-device mapping that best serves D2D swap.

    ``overflow[s]``/``spare[s]`` are the stage's demand beyond / slack
    under device capacity.  ``mode`` is ``"exact"`` (full
    enumeration), ``"greedy"`` (anchored enumeration fixing stage 0),
    or ``"auto"`` (exact for <= 8 devices, greedy beyond).
    """
    n = topology.n_gpus
    if len(overflow) != n or len(spare) != n:
        raise MappingError("overflow/spare vectors must match device count")
    if mode not in ("auto", "exact", "greedy"):
        raise MappingError(f"unknown search mode {mode!r}")

    identity = tuple(range(n))
    if topology.is_symmetric or not any(o > 0 for o in overflow):
        evaluation = assign_spare_memory(topology, identity, overflow, spare)
        return MappingResult(
            device_map=list(identity),
            score=_score(evaluation),
            placed_fraction=evaluation.placed_fraction,
            assignments=evaluation.assignments,
            mappings_evaluated=1,
        )

    if mode == "auto":
        mode = "exact" if n <= 8 else "greedy"

    best = _Candidate()
    evaluated = 0
    for device_map in _mappings(n, mode, max_mappings):
        evaluation = assign_spare_memory(topology, device_map, overflow, spare)
        evaluated += 1
        score = _score(evaluation)
        if score > best.score:
            best = _Candidate(
                score=score,
                placed=evaluation.placed_fraction,
                device_map=device_map,
                assignments=evaluation.assignments,
            )
    if best.device_map is None:
        raise MappingError("no feasible device mapping found")
    return MappingResult(
        device_map=list(best.device_map),
        score=best.score,
        placed_fraction=best.placed,
        assignments=best.assignments,
        mappings_evaluated=evaluated,
    )


def _mappings(n: int, mode: str, max_mappings: Optional[int]):
    if mode == "exact":
        source = itertools.permutations(range(n))
    else:
        # Greedy mode anchors stage 0 on device 0 — DGX-class
        # topologies are near-symmetric under relabeling, so this
        # prunes a factor of n while rarely losing the optimum.
        source = (
            (0,) + rest for rest in itertools.permutations(range(1, n))
        )
    for count, mapping in enumerate(source):
        if max_mappings is not None and count >= max_mappings:
            return
        yield mapping
