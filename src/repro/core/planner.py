"""Memory-compaction planning (Section III-D).

The planner combines D2D swap, GPU-CPU swap, and recomputation:

1. profile the job; compute live intervals and per-stage peaks;
2. pick a device mapping that places light GPUs next to overflowing
   ones (Figure 6) when the topology is asymmetric;
3. build an initial assignment — GPU-CPU swap for tensors with
   extremely long live intervals (optimizer state above all),
   recomputation for activations whose re-forward is cheaper than a
   PCIe round trip, GPU-CPU swap for the rest — until every stage
   fits;
4. refine: repeatedly upgrade the worst-overhead assignments to D2D
   swap while spare GPU memory allows, keeping a change only when
   the emulator measures an improvement.

Disabling techniques through :class:`PlannerConfig` yields the
paper's baselines: recomputation-only, GPU-CPU-swap-only, and the
D2D-only MPress variant of Figure 7.

Given a fault profile (:class:`~repro.faults.spec.FaultSchedule`),
the planner plans for the degraded machine instead of the nominal
one: D2D stripes avoid parking state on degraded peers, CPU-swap
cost estimates use the derated PCIe bandwidth, and stage periods use
the derated compute speed — so congestion/capacity checks run
against what the hardware will actually deliver.

This planner optimises *within* a fixed parallelism shape (one
pipeline chain on one server).  Choosing the shape itself — the
TP x DP x PP point and its placement — is :mod:`repro.autoplan`'s
job; ``Planner`` is the innermost layer its frontier executor runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cost_model import CostModel
from repro.core.device_mapping import (
    MappingResult,
    assign_spare_memory,
    search_device_mapping,
)
from repro.core.emulator import EmulationReport, Emulator
from repro.core.plan import Action, MemorySavingPlan
from repro.core.profiler import Profiler, ProfileStats
from repro.core.rewriter import Assignment, Rewriter
from repro.core.striping import StripePlan
from repro.faults.spec import FaultSchedule
from repro.graph.tensor import TensorClass, TensorKind
from repro.job import TrainingJob


@dataclass(frozen=True)
class PlannerConfig:
    """Planner knobs; technique toggles reproduce the baselines."""

    allow_recompute: bool = True
    allow_cpu_swap: bool = True
    allow_d2d: bool = True
    striping: bool = True
    mapping_mode: str = "auto"        # "auto" | "exact" | "greedy" | "identity"
    fit_margin: float = 0.03          # target peak <= capacity * (1 - margin)
    spare_reserve: float = 0.03       # importers keep this fraction free
    max_refine_iterations: int = 6
    refine_batch: int = 4
    improvement_eps: float = 0.003
    prefetch_lead: int = 2
    # "emulate" measures every tentative upgrade batch; "coarse2fine"
    # prices a wider candidate pool with the analytic cost model first
    # and only lowers+simulates the predicted-profitable frontier
    # (docs/fastpath.md).
    search: str = "emulate"


@dataclass
class PlannerReport:
    """Search trajectory, for inspection and the paper's Table IV."""

    profile: ProfileStats
    device_map: List[int]
    mapping: Optional[MappingResult]
    feasible: bool
    initial_time: float = 0.0
    final_time: float = 0.0
    refine_iterations: int = 0
    accepted_upgrades: int = 0
    emulation_times: List[float] = field(default_factory=list)
    # Candidate plans emulated during the search; all of them share
    # one lowering skeleton (the Emulator lowers per plan only).
    n_emulations: int = 0
    # Coarse-to-fine accounting: candidates priced by the analytic
    # cost model instead of simulated, and full simulations actually
    # spent (== n_emulations; kept separate so the ratio reads off
    # the report directly).
    n_fast_path: int = 0
    n_full_sims: int = 0
    # Fault-aware planning (set when a fault profile was supplied).
    fault_profile: Optional[FaultSchedule] = None
    avoided_importers: List[int] = field(default_factory=list)
    pcie_derates: Dict[int, float] = field(default_factory=dict)
    compute_derates: Dict[int, float] = field(default_factory=dict)


class Planner:
    """Builds a memory-saving plan for one training job."""

    def __init__(
        self,
        job: TrainingJob,
        config: PlannerConfig = PlannerConfig(),
        faults: Optional[FaultSchedule] = None,
        reserve_bytes: int = 0,
    ):
        self.job = job
        self.config = config
        if config.search not in ("emulate", "coarse2fine"):
            raise ValueError(f"unknown planner search {config.search!r}")
        if faults is not None and faults.is_empty:
            faults = None
        self.faults = faults
        self._avoid_importers = (
            faults.degraded_devices() if faults is not None else set()
        )
        self._capacity = job.server.gpu_memory
        # ``reserve_bytes`` is carved out of the fit target before
        # planning — hybrid DP x PP runs park gradient-bucket staging
        # buffers there, so plans leave room for them.
        self.reserve_bytes = max(0, reserve_bytes)
        self._target = (
            int(self._capacity * (1.0 - config.fit_margin)) - self.reserve_bytes
        )

    # -- public API --------------------------------------------------------

    def build(self) -> Tuple[MemorySavingPlan, PlannerReport]:
        profile = Profiler(self.job).run()
        device_map, mapping = self._choose_device_map(profile)
        self._device_map = device_map
        self._classes_by_key = {cls.key: cls for cls in profile.classes}
        cost_model = CostModel(self.job, device_map, profile.intervals)
        rewriter = Rewriter(self.job, profile.classes)
        # One emulator for the whole search: the tighten/refine loop
        # re-interprets candidate plans against a single cached
        # lowering skeleton instead of re-walking the graph per plan.
        emulator = Emulator(self.job, prefetch_lead=self.config.prefetch_lead)

        assignments, feasible = self._initial_assignments(profile, device_map, cost_model)
        if self.config.allow_recompute:
            assignments = rewriter.consolidate_recompute(assignments)
        self._intervals = profile.intervals
        plan = self._instrument(rewriter, assignments, device_map)
        report = PlannerReport(
            profile=profile,
            device_map=device_map,
            mapping=mapping,
            feasible=feasible,
        )
        if self.faults is not None:
            report.fault_profile = self.faults
            report.avoided_importers = sorted(self._avoid_importers)
            report.pcie_derates = {
                dev: self.faults.pcie_factor(dev)
                for dev in device_map
                if self.faults.pcie_factor(dev) < 1.0
            }
            report.compute_derates = {
                dev: self.faults.compute_factor(dev)
                for dev in device_map
                if self.faults.compute_factor(dev) < 1.0
            }

        baseline_report = emulator.run(plan)
        report.emulation_times.append(baseline_report.minibatch_time)

        # Feedback loop (Fig. 5, step 5): static savings estimates
        # undershoot because swap transients overlap; keep assigning
        # reductions to whatever the emulator still sees overflowing.
        plan, assignments, baseline_report = self._tighten(
            assignments,
            plan,
            baseline_report,
            profile,
            device_map,
            cost_model,
            rewriter,
            emulator,
            report,
        )
        report.initial_time = baseline_report.minibatch_time
        report.feasible = report.feasible and baseline_report.fits

        if self.config.allow_d2d:
            plan, assignments = self._refine(
                assignments,
                plan,
                baseline_report,
                profile,
                device_map,
                cost_model,
                rewriter,
                emulator,
                report,
            )
        report.final_time = report.emulation_times[-1]
        report.n_emulations = emulator.n_emulations
        report.n_full_sims = emulator.n_emulations
        return plan, report

    # -- device mapping ---------------------------------------------------

    def _choose_device_map(
        self, profile: ProfileStats
    ) -> Tuple[List[int], Optional[MappingResult]]:
        n = self.job.n_stages
        identity = list(range(n))
        if not self.config.allow_d2d or self.config.mapping_mode == "identity":
            return identity, None
        demand = self._d2d_demand_vector(profile)
        spare = self._reserved_spare(profile.stage_peaks)
        if not any(demand):
            return identity, None
        mapping = search_device_mapping(
            self.job.server.topology,
            demand,
            spare,
            mode=self.config.mapping_mode,
        )
        return mapping.device_map, mapping

    def _d2d_demand_for(self, stage: int, overflow: int, profile: ProfileStats) -> int:
        """Importer bytes ``stage`` needs to D2D ``overflow`` bytes away.

        A class saving ``size * (instances - 1)`` bytes parks
        ``size * instances`` on importers, and classes are claimed
        whole, so the demand is ceil(overflow / class saving) whole
        classes' parked footprint.
        """
        if overflow <= 0:
            return 0
        acts = [
            cls
            for cls in profile.classes_of_stage(stage)
            if cls.kind is TensorKind.ACTIVATION and cls.instances > 1
        ]
        if not acts:
            return int(overflow * 1.3)
        # Claims land on the large transformer-layer tensors; tiny
        # embedding/head activations would skew a plain mean.
        largest = max(cls.size for cls in acts)
        major = [cls for cls in acts if cls.size >= largest // 2]
        size = sum(cls.size for cls in major) / len(major)
        instances = major[0].instances
        saving = size * max(1, instances - 1)
        parked = size * instances
        classes_needed = -(-overflow // int(saving))  # ceil
        # 10% slack absorbs lane-weighted splitting and per-instance
        # flooring losses when claims are carved out of the pot.
        return int(classes_needed * parked * 1.1)

    def _d2d_demand_vector(self, profile: ProfileStats) -> List[int]:
        return [
            self._d2d_demand_for(stage, max(0, peak - self._target), profile)
            for stage, peak in enumerate(profile.stage_peaks)
        ]

    def _reserved_spare(self, peaks_by_stage: List[int]) -> List[int]:
        """Importable bytes per stage.

        Importers may fill closer to capacity than exporters' planning
        target — their own footprint is small and predictable — so
        spare is measured against a higher import cap.
        """
        reserve = self.config.spare_reserve
        import_cap = int(self._capacity * (1.0 - self.config.fit_margin / 2))
        return [
            max(0, int((import_cap - peak) * (1.0 - reserve)))
            for peak in peaks_by_stage
        ]

    # -- initial assignment ------------------------------------------------

    def _initial_assignments(
        self,
        profile: ProfileStats,
        device_map: List[int],
        cost_model: CostModel,
    ) -> Tuple[Dict[tuple, Assignment], bool]:
        assignments: Dict[tuple, Assignment] = {}
        d2d_budgets = self._fresh_pots(profile, device_map)
        self._device_map = device_map
        feasible = True
        residents: Dict[int, int] = {}
        for stage in range(self.job.n_stages):
            resident = profile.stage_peaks[stage]
            if resident <= self._target:
                continue
            classes = profile.classes_of_stage(stage)
            # When model state alone overflows the device, optimizer
            # swapping is inevitable — commit to it up front so the
            # activation decisions see the PCIe budget that traffic
            # consumes.  Otherwise activations go first and optimizer
            # state stays resident unless they fall short, matching
            # the paper's measured mixes (Table IV: tiny GPU-CPU
            # shares whenever recomputation suffices).
            if self._state_bytes(classes) > 0.75 * self._target:
                resident = self._assign_optimizer(
                    classes, assignments, cost_model, resident
                )
                resident = self._assign_stash(
                    classes, assignments, cost_model, resident, d2d_budgets,
                    force=True,
                )
            resident = self._assign_activations(
                classes, assignments, cost_model, resident, d2d_budgets
            )
            if resident > self._target:
                resident = self._assign_optimizer(
                    classes, assignments, cost_model, resident
                )
            if resident > self._target:
                resident = self._assign_stash(
                    classes, assignments, cost_model, resident, d2d_budgets
                )
            residents[stage] = resident
        if self.config.allow_d2d:
            self._retry_failed_d2d(
                profile, device_map, cost_model, assignments, residents
            )
        feasible = all(resident <= self._target for resident in residents.values())
        return assignments, feasible

    def _retry_failed_d2d(
        self,
        profile: ProfileStats,
        device_map: List[int],
        cost_model: CostModel,
        assignments: Dict[tuple, Assignment],
        residents: Dict[int, int],
    ) -> None:
        """Second claim pass against the spare the pots left stranded.

        Per-exporter pots are sized with slack, and claims rarely use
        a grant exactly, so real spare remains after the first pass.
        Stages still over target retry their unclaimed classes
        against the global leftover (reserved spare minus what was
        actually claimed into each device).
        """
        if not any(res > self._target for res in residents.values()):
            return
        spare_by_stage = self._reserved_spare(profile.stage_peaks)
        leftover: Dict[int, int] = {
            device_map[stage]: spare for stage, spare in enumerate(spare_by_stage)
        }
        for key, (action, stripe) in assignments.items():
            if action is Action.D2D_SWAP and stripe is not None:
                cls = self._classes_by_key[key]
                instances = max(1, cls.instances)
                for importer in stripe.importers:
                    leftover[importer] = max(
                        0, leftover.get(importer, 0)
                        - stripe.bytes_to(importer) * instances
                    )
        for stage, resident in sorted(residents.items()):
            if resident <= self._target:
                continue
            candidates = sorted(
                (
                    cls
                    for cls in profile.classes_of_stage(stage)
                    if cls.key not in assignments
                    and cls.kind in (TensorKind.ACTIVATION, TensorKind.STASHED_PARAMS)
                ),
                key=lambda cls: -cls.layer,
            )
            for cls in candidates:
                if resident <= self._target:
                    break
                stripe = self._claim_d2d(cls, cost_model, leftover)
                if stripe is None:
                    continue
                assignments[cls.key] = (Action.D2D_SWAP, stripe)
                resident -= self._estimated_saving(cls, Action.D2D_SWAP, stripe)
            residents[stage] = resident

    @staticmethod
    def _state_bytes(classes) -> int:
        """Peak model-state bytes (working + optimizer + stash)."""
        return sum(
            cls.peak_bytes
            for cls in classes
            if cls.kind in (
                TensorKind.WORKING_STATE,
                TensorKind.OPTIMIZER_STATE,
                TensorKind.STASHED_PARAMS,
            )
        )

    def _assign_optimizer(self, classes, assignments, cost_model, resident) -> int:
        """Optimizer state: the extreme-live-interval case — CPU swap."""
        if not self.config.allow_cpu_swap:
            return resident
        for cls in classes:
            if cls.kind is TensorKind.OPTIMIZER_STATE and resident > self._target:
                assignments[cls.key] = (Action.CPU_SWAP, None)
                resident -= self._estimated_saving(cls, Action.CPU_SWAP)
        return resident

    def _assign_activations(
        self, classes, assignments, cost_model, resident, d2d_budgets
    ) -> int:
        """Activations: recompute vs CPU swap by extra overhead.

        Later layers first — the paper's second observation: their
        backward passes start first, and delaying them stretches the
        live intervals of earlier layers, creating swap headroom.
        """
        config = self.config
        activations = sorted(
            (cls for cls in classes if cls.kind is TensorKind.ACTIVATION),
            key=lambda cls: -cls.layer,
        )
        for cls in activations:
            if resident <= self._target:
                break
            action = self._pick_activation_action(cls, cost_model, assignments)
            if action is None:
                if config.allow_d2d:
                    stripe = self._claim_d2d(
                        cls, cost_model, d2d_budgets.get(cls.stage, {})
                    )
                    if stripe is not None:
                        assignments[cls.key] = (Action.D2D_SWAP, stripe)
                        resident -= self._estimated_saving(
                            cls, Action.D2D_SWAP, stripe
                        )
                continue
            assignments[cls.key] = (action, None)
            resident -= self._estimated_saving(cls, action)
        return resident

    def _pick_activation_action(
        self,
        cls: TensorClass,
        cost_model: CostModel,
        assignments: Dict[tuple, Assignment],
    ) -> Optional[Action]:
        """Recompute vs CPU swap, aware of PCIe congestion.

        A swap is only free while the stage's aggregate PCIe traffic
        still fits in the hideable window; beyond that, queueing
        delay surfaces as extra time (the effect behind the paper's
        67% GPU-CPU-swap throughput loss).
        """
        config = self.config
        if config.allow_recompute and config.allow_cpu_swap:
            costs = cost_model.costs_for(cls)
            cpu_extra = self._congested_cpu_extra(cls, costs.cpu_swap_extra, assignments)
            if cpu_extra == 0.0:
                return Action.CPU_SWAP
            if costs.recompute_extra is not None and costs.recompute_extra < cpu_extra:
                return Action.RECOMPUTE
            return Action.CPU_SWAP
        if config.allow_recompute:
            return Action.RECOMPUTE
        if config.allow_cpu_swap:
            return Action.CPU_SWAP
        return None

    # Fraction of a stage's per-microbatch period that PCIe traffic
    # can hide behind.  Deliberately conservative: real swap engines
    # reach nowhere near full copy/compute overlap (the paper
    # measures 67% throughput loss when swapping 39% of a stage's
    # data — far beyond a pure bandwidth effect), so only a modest
    # slice of the period counts as free.
    _HIDEABLE_FRACTION = 0.5

    def _stage_period(self, stage: int) -> float:
        device = self._device_map[stage]
        period = self.job.forward_time(stage, device) + self.job.backward_time(stage, device)
        if self.faults is not None:
            period /= self.faults.compute_factor(device)
        return period

    def _swap_seconds(self, cls: TensorClass) -> float:
        """Per-microbatch PCIe seconds this class adds when CPU-swapped."""
        bandwidth = self.job.server.pcie.sustained_bandwidth
        if self.faults is not None:
            bandwidth *= self.faults.pcie_factor(self._device_map[cls.stage])
        round_trip = 2.0 * cls.size / bandwidth
        if cls.kind is TensorKind.OPTIMIZER_STATE:
            # Optimizer swaps happen once per minibatch.
            return round_trip / self.job.microbatches_per_minibatch
        return round_trip

    def _stage_pcie_load(
        self, stage: int, assignments: Dict[tuple, Assignment]
    ) -> float:
        """Per-microbatch PCIe seconds already committed on a stage."""
        load = 0.0
        for key, (action, _stripe) in assignments.items():
            if action is Action.CPU_SWAP and key[1] == stage:
                cls = self._class_by_key(key)
                if cls is not None:
                    load += self._swap_seconds(cls)
        return load

    def _congested_cpu_extra(
        self,
        cls: TensorClass,
        base_extra: float,
        assignments: Dict[tuple, Assignment],
    ) -> float:
        period = self._stage_period(cls.stage)
        budget = self._HIDEABLE_FRACTION * period
        load = self._stage_pcie_load(cls.stage, assignments)
        swap_time = self._swap_seconds(cls)
        congestion = max(0.0, (load + swap_time) - max(0.0, budget))
        return max(base_extra, min(swap_time, congestion))

    def _assign_stash(
        self, classes, assignments, cost_model, resident, d2d_budgets, force=False
    ) -> int:
        for cls in classes:
            if cls.kind is not TensorKind.STASHED_PARAMS:
                continue
            if not force and resident <= self._target:
                continue
            if cls.key in assignments:
                continue
            if self.config.allow_cpu_swap:
                assignments[cls.key] = (Action.CPU_SWAP, None)
                resident -= self._estimated_saving(cls, Action.CPU_SWAP)
            elif self.config.allow_d2d:
                stripe = self._claim_d2d(
                    cls, cost_model, d2d_budgets.get(cls.stage, {})
                )
                if stripe is not None:
                    assignments[cls.key] = (Action.D2D_SWAP, stripe)
                    resident -= self._estimated_saving(cls, Action.D2D_SWAP, stripe)
        return resident

    def _class_by_key(self, key: tuple) -> Optional[TensorClass]:
        return self._classes_by_key.get(key)

    # -- plan materialization --------------------------------------------

    def _instrument(self, rewriter, assignments, device_map) -> MemorySavingPlan:
        """Build the plan, spilling CPU swaps to NVMe if host memory
        cannot hold every in-flight swapped tensor."""
        nvme_keys = self._select_nvme_spill(assignments)
        return rewriter.instrument(assignments, device_map, nvme_keys).plan

    def _select_nvme_spill(self, assignments: Dict[tuple, Assignment]) -> set:
        """CPU-swap entries to push onward to NVMe.

        Tensors with the longest live intervals go first — their
        slower NVMe round trips have the most slack to hide in
        (the same reasoning as the paper's Table III t1 case).
        """
        # Static estimates miss staging transients and warmup
        # overshoot, so budget conservatively.
        host_cap = int(self.job.server.host.memory_bytes * 0.65)
        entries = []
        total = 0
        for key, (action, _stripe) in assignments.items():
            if action is not Action.CPU_SWAP:
                continue
            cls = self._classes_by_key[key]
            resident = cls.size * max(1, cls.instances)
            total += resident
            interval = self._intervals.get(key)
            entries.append((interval.mean if interval else 0.0, key, resident))
        if total <= host_cap:
            return set()
        entries.sort(key=lambda entry: -entry[0])
        spill = set()
        excess = total - host_cap
        for _interval, key, resident in entries:
            if excess <= 0:
                break
            spill.add(key)
            excess -= resident
        return spill

    # -- D2D budgets ---------------------------------------------------------
    #
    # Spare memory is partitioned into per-exporter *pots* using the
    # same spare-assignment routine the device-mapping search scores
    # (Fig. 6): each overflowing stage owns the share of its
    # neighbours' headroom the assignment gave it, so one stage's
    # claims cannot starve another's earmarked spare.

    def _exporter_pots(
        self,
        device_map: List[int],
        peaks_by_stage: List[int],
        demand_by_stage: List[int],
    ) -> Dict[int, Dict[int, int]]:
        spare = self._reserved_spare(peaks_by_stage)
        evaluation = assign_spare_memory(
            self.job.server.topology, tuple(device_map), demand_by_stage, spare
        )
        pots: Dict[int, Dict[int, int]] = {}
        for exporter, alloc in evaluation.assignments.items():
            pots[exporter] = {
                device_map[imp_stage]: amount for imp_stage, amount in alloc.items()
            }
        return pots

    def _fresh_pots(
        self, profile: ProfileStats, device_map: List[int]
    ) -> Dict[int, Dict[int, int]]:
        """Initial pots: the same parked-byte demand the mapping saw."""
        demand = self._d2d_demand_vector(profile)
        return self._exporter_pots(device_map, profile.stage_peaks, demand)

    def _global_headroom(self, device_peaks: List[int]) -> Dict[int, int]:
        """Per-device importable bytes from *measured* peaks.

        Measured peaks already embed earlier claims (parked imports
        and transients), so first-come claims against this shared
        budget cannot starve anyone retroactively — each tighten or
        refine round re-measures.
        """
        reserve = self.config.spare_reserve
        import_cap = int(self._capacity * (1.0 - self.config.fit_margin / 2))
        return {
            dev: max(0, int((import_cap - peak) * (1.0 - reserve)))
            for dev, peak in enumerate(device_peaks)
        }

    def _claim_d2d(
        self,
        cls: TensorClass,
        cost_model: CostModel,
        budgets: Dict[int, int],
    ) -> Optional[StripePlan]:
        """Reserve importer budget for all in-flight instances of ``cls``."""
        if not budgets:
            return None
        instances = max(1, cls.instances)
        # State parked on a degraded peer would ride a slow or soon-dead
        # resource — the fault profile's devices are off limits.
        per_instance = {
            dev: (0 if dev in self._avoid_importers else amount // instances)
            for dev, amount in budgets.items()
        }
        stripe = cost_model.candidate_stripe(
            cls, per_instance, striping=self.config.striping
        )
        if stripe is None and cls.kind is TensorKind.ACTIVATION:
            # Partial-tensor fallback: park whatever fraction the
            # remaining spare can hold (striping is byte-granular).
            for fraction in (0.75, 0.5, 0.25):
                stripe = cost_model.candidate_stripe(
                    cls,
                    per_instance,
                    striping=self.config.striping,
                    tensor_bytes=int(cls.size * fraction),
                )
                if stripe is not None:
                    break
        if stripe is None:
            return None
        for importer in stripe.importers:
            budgets[importer] -= stripe.bytes_to(importer) * instances
        return stripe

    # -- feasibility tightening -------------------------------------------

    def _tighten(
        self,
        assignments: Dict[tuple, Assignment],
        plan: MemorySavingPlan,
        current: EmulationReport,
        profile: ProfileStats,
        device_map: List[int],
        cost_model: CostModel,
        rewriter: Rewriter,
        emulator: Emulator,
        report: PlannerReport,
        max_rounds: int = 5,
    ) -> Tuple[MemorySavingPlan, Dict[tuple, Assignment], EmulationReport]:
        """Assign further reductions until the emulator sees no overflow."""
        stage_of_device = {dev: stage for stage, dev in enumerate(device_map)}
        for _ in range(max_rounds):
            if current.fits:
                break
            progressed = False
            budgets = self._global_headroom(current.device_peaks)
            for device in current.overflowed_devices:
                stage = stage_of_device.get(device)
                if stage is None:
                    continue
                extra = current.device_peaks[device] - self._target
                if self._assign_more(
                    stage, extra, assignments, profile, cost_model, budgets
                ):
                    progressed = True
            if not progressed:
                break
            if self.config.allow_recompute:
                assignments = rewriter.consolidate_recompute(assignments)
            plan = self._instrument(rewriter, assignments, device_map)
            current = emulator.run(plan)
            report.emulation_times.append(current.minibatch_time)
        return plan, assignments, current

    def _assign_more(
        self,
        stage: int,
        extra: int,
        assignments: Dict[tuple, Assignment],
        profile: ProfileStats,
        cost_model: CostModel,
        budgets: Dict[int, int],
    ) -> bool:
        """Extend the stage's assignment to cover ``extra`` more bytes."""
        need = int(extra * 1.2)
        progressed = False
        candidates = sorted(
            (
                cls
                for cls in profile.classes_of_stage(stage)
                if cls.key not in assignments
                and cls.kind in (TensorKind.ACTIVATION, TensorKind.STASHED_PARAMS,
                                 TensorKind.OPTIMIZER_STATE)
            ),
            key=lambda cls: -cls.layer,
        )
        for cls in candidates:
            if need <= 0:
                break
            action = None
            stripe = None
            if cls.kind is TensorKind.ACTIVATION:
                action = self._pick_activation_action(cls, cost_model, assignments)
            elif self.config.allow_cpu_swap:
                action = Action.CPU_SWAP
            if action is None and self.config.allow_d2d:
                stripe = self._claim_d2d(cls, cost_model, budgets)
                if stripe is not None:
                    action = Action.D2D_SWAP
            if action is None:
                continue
            assignments[cls.key] = (action, stripe)
            need -= self._estimated_saving(cls, action)
            progressed = True
        return progressed

    # -- refinement -----------------------------------------------------------

    def _refine(
        self,
        assignments: Dict[tuple, Assignment],
        plan: MemorySavingPlan,
        current: EmulationReport,
        profile: ProfileStats,
        device_map: List[int],
        cost_model: CostModel,
        rewriter: Rewriter,
        emulator: Emulator,
        report: PlannerReport,
    ) -> Tuple[MemorySavingPlan, Dict[tuple, Assignment]]:
        """Upgrade worst-overhead assignments to D2D, keeping wins."""
        config = self.config
        blacklist: set = set()
        classes_by_key = {cls.key: cls for cls in profile.classes}
        best_time = current.minibatch_time
        best_fits = current.fits
        best_peaks = current.device_peaks
        for _ in range(config.max_refine_iterations):
            report.refine_iterations += 1
            candidates = self._refine_candidates(
                assignments, classes_by_key, cost_model, blacklist
            )
            if not candidates:
                break
            budgets = self._global_headroom(best_peaks)
            if config.search == "coarse2fine":
                candidates = self._coarse_frontier(
                    candidates, classes_by_key, cost_model, budgets,
                    blacklist, report,
                )
                if not candidates:
                    # The analytic model predicts no profitable
                    # upgrade this round — the whole batch's lowering
                    # and simulation is skipped.
                    continue
            tentative = dict(assignments)
            upgraded: List[tuple] = []
            for key, _extra in candidates[: config.refine_batch]:
                cls = classes_by_key[key]
                stripe = self._claim_d2d(cls, cost_model, budgets)
                if stripe is not None:
                    tentative[key] = (Action.D2D_SWAP, stripe)
                    upgraded.append(key)
                else:
                    blacklist.add(key)
            if not upgraded:
                continue
            new_plan = self._instrument(rewriter, tentative, device_map)
            trial = emulator.run(new_plan)
            report.emulation_times.append(trial.minibatch_time)
            improved = trial.minibatch_time < best_time * (1.0 - config.improvement_eps)
            fits_ok = trial.fits or not best_fits
            if improved and fits_ok:
                assignments = tentative
                plan = new_plan
                best_time = trial.minibatch_time
                best_fits = trial.fits
                best_peaks = trial.device_peaks
                report.accepted_upgrades += len(upgraded)
            else:
                blacklist.update(upgraded)
        return plan, assignments

    def _coarse_frontier(
        self,
        candidates: List[Tuple[tuple, float]],
        classes_by_key: Dict[tuple, TensorClass],
        cost_model: CostModel,
        budgets: Dict[int, int],
        blacklist: set,
        report: PlannerReport,
    ) -> List[Tuple[tuple, float]]:
        """Coarse pass of the coarse-to-fine search (docs/fastpath.md).

        A wide pool of upgrade candidates is *priced* with the
        analytic collective/cost model — predicted gain is the
        candidate's current overhead minus its D2D overhead on a
        tentative stripe — and only the profitable frontier survives
        to be lowered and simulated.  Claims here run against a copy
        of the importer budgets; the fine pass re-claims for real.
        """
        pool = candidates[: self.config.refine_batch * 4]
        priced: List[Tuple[float, tuple, float]] = []
        for key, extra in pool:
            cls = classes_by_key[key]
            report.n_fast_path += 1
            stripe = self._claim_d2d(cls, cost_model, dict(budgets))
            if stripe is None:
                blacklist.add(key)
                continue
            d2d_extra = cost_model.costs_for(cls, stripe).d2d_swap_extra or 0.0
            gain = extra - d2d_extra
            if gain <= 0:
                blacklist.add(key)
                continue
            priced.append((gain, key, extra))
        priced.sort(key=lambda entry: -entry[0])
        return [(key, extra) for _gain, key, extra in priced]

    def _refine_candidates(
        self,
        assignments: Dict[tuple, Assignment],
        classes_by_key: Dict[tuple, TensorClass],
        cost_model: CostModel,
        blacklist: set,
    ) -> List[Tuple[tuple, float]]:
        """Assigned tensors ranked by the extra overhead they impose.

        Recomputation always costs its re-forward; a CPU swap costs
        the portion of its round trip the stage's PCIe window cannot
        hide (congestion-aware, so saturating traffic surfaces here
        even when each tensor's interval looks long enough).
        """
        loads = {
            stage: self._stage_pcie_load(stage, assignments)
            for stage in range(self.job.n_stages)
        }
        scored = []
        for key, (action, _stripe) in assignments.items():
            if key in blacklist or action not in (Action.RECOMPUTE, Action.CPU_SWAP):
                continue
            cls = classes_by_key[key]
            if action is Action.RECOMPUTE:
                extra = cost_model.extra_overhead(cls, action.value)
            else:
                period = self._stage_period(cls.stage)
                budget = self._HIDEABLE_FRACTION * period
                overload = max(0.0, loads[cls.stage] - budget)
                base = cost_model.extra_overhead(cls, action.value)
                extra = max(base, min(self._swap_seconds(cls), overload))
                # Even a "hidden" swap interferes with other PCIe
                # traffic; keep it as a last-resort upgrade candidate
                # so emulation gets to judge.
                extra = max(extra, 1e-6)
            if extra > 0:
                scored.append((key, extra))
        scored.sort(key=lambda kv: -kv[1])
        return scored

    # -- accounting -----------------------------------------------------------

    def _estimated_saving(
        self, cls: TensorClass, action: Action, stripe: Optional[StripePlan] = None
    ) -> int:
        """Bytes a reduction removes from the stage's peak.

        One instance stays transient (during generation/restore), so
        multi-instance classes save ``size * (instances - 1)``;
        optimizer state leaves the device entirely between steps.
        Recomputation additionally retains per-layer boundary
        checkpoints for every in-flight microbatch.
        """
        if cls.kind is TensorKind.OPTIMIZER_STATE:
            # Chunked streaming keeps ~3 chunks (capacity/16 each)
            # transiently resident around the optimizer step.
            transient = min(cls.size, 3 * self._capacity // 16)
            return cls.size - transient
        size = cls.size
        if action is Action.D2D_SWAP and stripe is not None:
            size = stripe.tensor_bytes
        saving = size * max(0, cls.instances - 1)
        if action is Action.RECOMPUTE and cls.layer >= 0:
            boundary = self.job.model.layers[cls.layer].boundary_bytes(
                self.job.microbatch_size, self.job.bytes_per_element
            )
            saving = max(0, saving - boundary * cls.instances)
        return saving


def baseline_config(kind: str) -> PlannerConfig:
    """Planner configs for the paper's baselines.

    ``"recomputation"``, ``"gpu-cpu-swap"``, ``"d2d-only"``, or the
    full ``"mpress"``.
    """
    if kind == "recomputation":
        return PlannerConfig(
            allow_cpu_swap=False, allow_d2d=False, mapping_mode="identity"
        )
    if kind == "gpu-cpu-swap":
        return PlannerConfig(
            allow_recompute=False, allow_d2d=False, mapping_mode="identity"
        )
    if kind == "d2d-only":
        return PlannerConfig(allow_recompute=False, allow_cpu_swap=False)
    if kind == "mpress":
        return PlannerConfig()
    raise ValueError(f"unknown baseline kind {kind!r}")
