"""Rewriter: instrument the data-flow graph with memory-saving ops.

Takes the planner's tentative per-tensor assignments and produces an
:class:`InstrumentedProgram` — the validated plan plus the compute
program it rewrites (Fig. 5, step 4).  Validation enforces the
operator-dependency rules Section III-D lays out, and the
consolidation pass fuses recomputation over consecutive layers (the
paper's third observation: recomputing a contiguous run also frees
the intermediate boundary tensors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.plan import Action, MemorySavingPlan, PlanEntry, validate_plan
from repro.core.striping import StripePlan
from repro.errors import PlanError
from repro.graph.dataflow import Program, build_program
from repro.graph.tensor import TensorClass, TensorKind
from repro.job import TrainingJob

Assignment = Tuple[Action, Optional[StripePlan]]


@dataclass(frozen=True)
class InstrumentedProgram:
    """A compute program plus the plan that rewrites it."""

    job: TrainingJob
    program: Program
    plan: MemorySavingPlan

    def actions_by_stage(self) -> Dict[int, Dict[str, List[int]]]:
        """Stage -> action name -> affected layer indices (for reports)."""
        table: Dict[int, Dict[str, List[int]]] = {}
        for entry in self.plan.entries.values():
            stage_row = table.setdefault(entry.cls.stage, {})
            stage_row.setdefault(entry.action.value, []).append(entry.cls.layer)
        for stage_row in table.values():
            for layers in stage_row.values():
                layers.sort()
        return table


class Rewriter:
    """Builds validated plans from raw assignments."""

    def __init__(self, job: TrainingJob, classes: List[TensorClass]):
        self.job = job
        self.classes = classes
        self._by_key = {cls.key: cls for cls in classes}

    def instrument(
        self,
        assignments: Dict[tuple, Assignment],
        device_map: List[int],
        nvme_keys: Optional[set] = None,
    ) -> InstrumentedProgram:
        """Build a validated plan; ``nvme_keys`` spill those CPU swaps."""
        nvme_keys = nvme_keys or set()
        plan = MemorySavingPlan(device_map=list(device_map))
        for key, (action, stripe) in assignments.items():
            cls = self._by_key.get(key)
            if cls is None:
                raise PlanError(f"assignment for unknown tensor class {key}")
            if action is Action.NONE:
                continue
            tier = "nvme" if key in nvme_keys and action is Action.CPU_SWAP else "host"
            plan.assign(PlanEntry(cls=cls, action=action, stripe=stripe, tier=tier))
        validate_plan(plan, self.classes)
        program = build_program(self.job.stage_plan, self.job.schedule)
        return InstrumentedProgram(job=self.job, program=program, plan=plan)

    def consolidate_recompute(
        self, assignments: Dict[tuple, Assignment]
    ) -> Dict[tuple, Assignment]:
        """Fill single-layer gaps inside recompute runs.

        If layers ``l-1`` and ``l+1`` of a stage recompute but ``l``
        does not, recomputing ``l`` too costs one extra forward but
        removes a boundary tensor that would otherwise have to stay
        resident; the paper prefers consecutive recompute runs.
        """
        result = dict(assignments)
        by_stage: Dict[int, List[TensorClass]] = {}
        for cls in self.classes:
            if cls.kind is TensorKind.ACTIVATION:
                by_stage.setdefault(cls.stage, []).append(cls)
        for stage_classes in by_stage.values():
            stage_classes.sort(key=lambda cls: cls.layer)
            for previous, middle, following in zip(
                stage_classes, stage_classes[1:], stage_classes[2:]
            ):
                if (
                    self._is_recompute(result, previous)
                    and self._is_recompute(result, following)
                    and result.get(middle.key, (Action.NONE, None))[0] is Action.NONE
                ):
                    result[middle.key] = (Action.RECOMPUTE, None)
        return result

    @staticmethod
    def _is_recompute(assignments: Dict[tuple, Assignment], cls: TensorClass) -> bool:
        return assignments.get(cls.key, (Action.NONE, None))[0] is Action.RECOMPUTE
