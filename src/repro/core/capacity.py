"""Capacity search: largest sustainable model and batch sizes.

The paper's Section II-C and Table II revolve around "largest
sustainable model sizes" — the biggest variant each system trains
before OOM.  This module searches that boundary:

* :func:`max_trainable_variant` walks a model family (Bert or GPT
  variants) under a given system and reports the largest survivor;
* :func:`max_microbatch` binary-searches the largest microbatch size
  a fixed model sustains (the paper's mb=12 vs mb=2 Bert results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.mpress import run_system
from repro.errors import ConfigurationError
from repro.job import TrainingJob
from repro.models.layers import ModelSpec


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of a capacity search."""

    largest: Optional[float]          # variant key (billions) or batch size
    survivors: List[float]
    failures: List[float]

    @property
    def any_trainable(self) -> bool:
        return self.largest is not None


def max_trainable_variant(
    variants: Dict[float, ModelSpec],
    job_builder: Callable[[ModelSpec], TrainingJob],
    system: str,
) -> CapacityResult:
    """Largest variant (by key) the ``system`` trains without OOM.

    ``variants`` maps a sortable key (billions of parameters) to the
    model; ``job_builder`` turns a model into the training job.
    Variants are probed in increasing size and the scan stops at the
    first failure — trainability is monotone in model size.
    """
    if not variants:
        raise ConfigurationError("no variants to search")
    survivors: List[float] = []
    failures: List[float] = []
    for key in sorted(variants):
        result = run_system(job_builder(variants[key]), system)
        if result.ok:
            survivors.append(key)
        else:
            failures.append(key)
            break
    largest = survivors[-1] if survivors else None
    return CapacityResult(largest=largest, survivors=survivors, failures=failures)


def max_microbatch(
    job_builder: Callable[[int], TrainingJob],
    system: str,
    low: int = 1,
    high: int = 64,
) -> CapacityResult:
    """Largest microbatch size in [low, high] that trains without OOM.

    Binary search — memory grows monotonically with microbatch size.
    """
    if low < 1 or high < low:
        raise ConfigurationError("need 1 <= low <= high")

    def trains(microbatch: int) -> bool:
        return run_system(job_builder(microbatch), system).ok

    survivors: List[float] = []
    failures: List[float] = []
    if not trains(low):
        return CapacityResult(largest=None, survivors=[], failures=[low])
    survivors.append(low)
    lo, hi = low, high
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if trains(mid):
            survivors.append(mid)
            lo = mid
        else:
            failures.append(mid)
            hi = mid - 1
    return CapacityResult(largest=float(lo), survivors=sorted(set(survivors)),
                          failures=sorted(set(failures)))
