"""Plan serialization: persist MPress Static's output.

A memory-saving plan is produced offline (the paper's MPress Static
runs once; the actual training reuses it for millions of iterations),
so a real deployment saves the plan next to the job config.  This
module round-trips :class:`MemorySavingPlan` through plain JSON.

The format is self-contained: tensor classes are embedded, so a plan
can be loaded without re-profiling — `validate_plan` against freshly
enumerated classes is still recommended before executing it.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.core.plan import Action, MemorySavingPlan, PlanEntry
from repro.core.striping import StripeBlock, StripePlan
from repro.errors import PlanError
from repro.graph.tensor import TensorClass, TensorKind

FORMAT_VERSION = 1


def plan_to_dict(plan: MemorySavingPlan) -> Dict:
    """Lower a plan into JSON-serializable primitives."""
    entries: List[Dict] = []
    for entry in plan.entries.values():
        record = {
            "class": _class_to_dict(entry.cls),
            "action": entry.action.value,
            "tier": entry.tier,
        }
        if entry.stripe is not None:
            record["stripe"] = _stripe_to_dict(entry.stripe)
        entries.append(record)
    return {
        "version": FORMAT_VERSION,
        "device_map": list(plan.device_map),
        "entries": entries,
    }


def plan_from_dict(payload: Dict) -> MemorySavingPlan:
    """Reconstruct a plan serialized by :func:`plan_to_dict`."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise PlanError(f"unsupported plan format version {version!r}")
    plan = MemorySavingPlan(device_map=list(payload["device_map"]))
    for record in payload.get("entries", []):
        cls = _class_from_dict(record["class"])
        stripe = None
        if "stripe" in record:
            stripe = _stripe_from_dict(record["stripe"])
        plan.assign(
            PlanEntry(
                cls=cls,
                action=Action(record["action"]),
                stripe=stripe,
                tier=record.get("tier", "host"),
            )
        )
    return plan


def save_plan(plan: MemorySavingPlan, path: str) -> None:
    """Write a plan to ``path`` as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=2, sort_keys=True)


def load_plan(path: str) -> MemorySavingPlan:
    """Read a plan previously written by :func:`save_plan`."""
    with open(path) as handle:
        return plan_from_dict(json.load(handle))


# -- lowering helpers ---------------------------------------------------------


def _class_to_dict(cls: TensorClass) -> Dict:
    return {
        "kind": cls.kind.value,
        "stage": cls.stage,
        "layer": cls.layer,
        "size": cls.size,
        "instances": cls.instances,
        "recomputable": cls.recomputable,
    }


def _class_from_dict(payload: Dict) -> TensorClass:
    return TensorClass(
        kind=TensorKind(payload["kind"]),
        stage=payload["stage"],
        layer=payload["layer"],
        size=payload["size"],
        instances=payload["instances"],
        recomputable=payload["recomputable"],
    )


def _stripe_to_dict(stripe: StripePlan) -> Dict:
    return {
        "exporter": stripe.exporter,
        "tensor_bytes": stripe.tensor_bytes,
        "blocks": [
            {
                "importer": block.importer,
                "size": block.size,
                "lane": list(block.lane),
                "return_lane": list(block.return_lane),
            }
            for block in stripe.blocks
        ],
    }


def _stripe_from_dict(payload: Dict) -> StripePlan:
    blocks = tuple(
        StripeBlock(
            importer=block["importer"],
            size=block["size"],
            lane=tuple(block["lane"]),
            return_lane=tuple(block["return_lane"]),
        )
        for block in payload["blocks"]
    )
    return StripePlan(
        exporter=payload["exporter"],
        tensor_bytes=payload["tensor_bytes"],
        blocks=blocks,
    )
