"""Plan serialization and canonical config encoding.

A memory-saving plan is produced offline (the paper's MPress Static
runs once; the actual training reuses it for millions of iterations),
so a real deployment saves the plan next to the job config.  This
module round-trips :class:`MemorySavingPlan` through plain JSON.

The format is self-contained: tensor classes are embedded, so a plan
can be loaded without re-profiling — `validate_plan` against freshly
enumerated classes is still recommended before executing it.

The second half of the module is the **canonical encoding** used by
:mod:`repro.runtime` to content-address simulation results: any
configuration object (nested dataclasses, enums, dicts keyed by
frozensets, ...) lowers to a deterministic, version-tagged JSON text
whose SHA-256 is stable across processes and dict insertion orders.
Two configs hash equal iff every semantic field is equal.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Dict, List

from repro.core.plan import Action, MemorySavingPlan, PlanEntry
from repro.core.striping import StripeBlock, StripePlan
from repro.errors import PlanError
from repro.graph.tensor import TensorClass, TensorKind

FORMAT_VERSION = 1

# Bump whenever the canonical lowering itself changes shape; it is
# embedded in every canonical text, so old digests stop matching.
CANONICAL_VERSION = 1


def plan_to_dict(plan: MemorySavingPlan) -> Dict:
    """Lower a plan into JSON-serializable primitives."""
    entries: List[Dict] = []
    for entry in plan.entries.values():
        record = {
            "class": _class_to_dict(entry.cls),
            "action": entry.action.value,
            "tier": entry.tier,
        }
        if entry.stripe is not None:
            record["stripe"] = _stripe_to_dict(entry.stripe)
        entries.append(record)
    return {
        "version": FORMAT_VERSION,
        "device_map": list(plan.device_map),
        "entries": entries,
    }


def plan_from_dict(payload: Dict) -> MemorySavingPlan:
    """Reconstruct a plan serialized by :func:`plan_to_dict`."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise PlanError(f"unsupported plan format version {version!r}")
    plan = MemorySavingPlan(device_map=list(payload["device_map"]))
    for record in payload.get("entries", []):
        cls = _class_from_dict(record["class"])
        stripe = None
        if "stripe" in record:
            stripe = _stripe_from_dict(record["stripe"])
        plan.assign(
            PlanEntry(
                cls=cls,
                action=Action(record["action"]),
                stripe=stripe,
                tier=record.get("tier", "host"),
            )
        )
    return plan


def save_plan(plan: MemorySavingPlan, path: str) -> None:
    """Write a plan to ``path`` as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=2, sort_keys=True)


def load_plan(path: str) -> MemorySavingPlan:
    """Read a plan previously written by :func:`save_plan`."""
    with open(path) as handle:
        return plan_from_dict(json.load(handle))


# -- lowering helpers ---------------------------------------------------------


def _class_to_dict(cls: TensorClass) -> Dict:
    return {
        "kind": cls.kind.value,
        "stage": cls.stage,
        "layer": cls.layer,
        "size": cls.size,
        "instances": cls.instances,
        "recomputable": cls.recomputable,
    }


def _class_from_dict(payload: Dict) -> TensorClass:
    return TensorClass(
        kind=TensorKind(payload["kind"]),
        stage=payload["stage"],
        layer=payload["layer"],
        size=payload["size"],
        instances=payload["instances"],
        recomputable=payload["recomputable"],
    )


def _stripe_to_dict(stripe: StripePlan) -> Dict:
    return {
        "exporter": stripe.exporter,
        "tensor_bytes": stripe.tensor_bytes,
        "blocks": [
            {
                "importer": block.importer,
                "size": block.size,
                "lane": list(block.lane),
                "return_lane": list(block.return_lane),
            }
            for block in stripe.blocks
        ],
    }


def _stripe_from_dict(payload: Dict) -> StripePlan:
    blocks = tuple(
        StripeBlock(
            importer=block["importer"],
            size=block["size"],
            lane=tuple(block["lane"]),
            return_lane=tuple(block["return_lane"]),
        )
        for block in payload["blocks"]
    )
    return StripePlan(
        exporter=payload["exporter"],
        tensor_bytes=payload["tensor_bytes"],
        blocks=blocks,
    )


# -- canonical config encoding ------------------------------------------------
#
# Every config object the runtime hashes is built from frozen
# dataclasses, enums, primitives, and containers of those.  The
# lowering is *structural*: dataclasses carry their class name, so a
# GPUSpec and a HostSpec with coincidentally equal fields never
# collide; sets and dicts are sorted by the canonical text of their
# members, so Python's insertion order cannot leak into the digest.


def canonical_payload(obj):
    """Lower ``obj`` into deterministic JSON-serializable primitives.

    Raises :class:`TypeError` for objects with no canonical form
    (functions, open files, arbitrary class instances) — a cache key
    must never silently depend on ``repr`` or ``id``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips exactly and normalizes -0.0 vs 0.0 texts.
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": obj.value}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical_payload(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonical_payload(item) for item in obj]
        return {"__set__": sorted(items, key=_sort_text)}
    if isinstance(obj, dict):
        items = [
            [canonical_payload(key), canonical_payload(value)]
            for key, value in obj.items()
        ]
        return {"__dict__": sorted(items, key=lambda kv: _sort_text(kv[0]))}
    raise TypeError(f"no canonical encoding for {type(obj).__name__!r}")


def _sort_text(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_json(obj, salt: str = "") -> str:
    """Version-tagged canonical JSON text of any config object."""
    envelope = {
        "canonical": CANONICAL_VERSION,
        "salt": salt,
        "data": canonical_payload(obj),
    }
    return json.dumps(envelope, sort_keys=True, separators=(",", ":"))


def config_digest(obj, salt: str = "") -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``.

    ``salt`` namespaces digests by consumer (the sweep runtime passes
    a code-version salt so semantic simulator changes invalidate old
    cache entries wholesale).
    """
    text = canonical_json(obj, salt=salt)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
