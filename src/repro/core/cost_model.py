"""Per-tensor cost model for the three memory-saving techniques.

This is the component behind the paper's Table III: for every tensor
class it prices Recomputation (an extra forward pass on the compute
stream), GPU-CPU swap (a PCIe round trip), and D2D swap (a striped
NVLink round trip), and derives the *extra* overhead each would
impose given the tensor's live interval — a swap whose round trip
fits inside the interval is free (Section III-D, footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.striping import StripePlan, build_stripe_plan
from repro.errors import PlanError
from repro.graph.liveness import LiveInterval
from repro.graph.tensor import TensorClass
from repro.hardware.bandwidth import transfer_time
from repro.job import TrainingJob


@dataclass(frozen=True)
class TensorCosts:
    """Raw and effective costs of each technique for one tensor class."""

    cls_key: tuple
    live_interval: float
    recompute: Optional[float]    # None when not recomputable
    cpu_swap: float               # PCIe round trip
    d2d_swap: Optional[float]     # striped NVLink round trip; None if no plan

    @property
    def recompute_extra(self) -> Optional[float]:
        """Recomputation always occupies the compute stream."""
        return self.recompute

    @property
    def cpu_swap_extra(self) -> float:
        """Extra delay: round trip minus what the interval hides."""
        return max(0.0, self.cpu_swap - self.live_interval)

    @property
    def d2d_swap_extra(self) -> Optional[float]:
        if self.d2d_swap is None:
            return None
        return max(0.0, self.d2d_swap - self.live_interval)

    def cheapest_action(self) -> str:
        """Name of the lowest-extra-overhead applicable technique.

        Ties break toward the technique that does not consume scarce
        spare GPU memory (the paper's t3 reasoning: prefer
        recomputation over D2D at equal overhead).
        """
        options = [("cpu-swap", self.cpu_swap_extra)]
        if self.recompute_extra is not None:
            options.append(("recompute", self.recompute_extra))
        if self.d2d_swap_extra is not None:
            options.append(("d2d-swap", self.d2d_swap_extra))
        priority = {"cpu-swap": 0, "recompute": 1, "d2d-swap": 2}
        return min(options, key=lambda kv: (kv[1], priority[kv[0]]))[0]


class CostModel:
    """Prices memory-saving actions for one training job."""

    def __init__(
        self,
        job: TrainingJob,
        device_map: list,
        intervals: Dict[tuple, LiveInterval],
    ):
        self.job = job
        self.device_map = list(device_map)
        self.intervals = intervals
        self._topology = job.server.topology

    def live_interval(self, cls: TensorClass) -> float:
        measured = self.intervals.get(cls.key)
        return measured.mean if measured is not None else 0.0

    def recompute_cost(self, cls: TensorClass) -> Optional[float]:
        if not cls.recomputable:
            return None
        device = self.device_map[cls.stage]
        layer = self.job.model.layers[cls.layer]
        return self.job.layer_forward_time(layer, device)

    def cpu_swap_cost(self, cls: TensorClass) -> float:
        one_way = transfer_time(cls.size, self.job.server.pcie, lanes=1)
        return 2.0 * one_way

    def d2d_swap_cost(self, cls: TensorClass, stripe: StripePlan) -> float:
        return stripe.round_trip_time(self._topology)

    def candidate_stripe(
        self,
        cls: TensorClass,
        importer_budgets: Dict[int, int],
        striping: bool = True,
        tensor_bytes: Optional[int] = None,
    ) -> Optional[StripePlan]:
        """Build a stripe plan for this class within importer budgets.

        ``tensor_bytes`` below the class size requests a *partial*
        stripe: only that many bytes park remotely, the rest stays
        resident (striping is byte-granular, Section III-C).
        """
        exporter = self.device_map[cls.stage]
        budgets = {
            imp: budget for imp, budget in importer_budgets.items() if imp != exporter
        }
        size = cls.size if tensor_bytes is None else min(tensor_bytes, cls.size)
        if size <= 0:
            return None
        try:
            return build_stripe_plan(
                self._topology, exporter, budgets, size, striping=striping
            )
        except PlanError:
            return None

    def costs_for(
        self, cls: TensorClass, stripe: Optional[StripePlan] = None
    ) -> TensorCosts:
        return TensorCosts(
            cls_key=cls.key,
            live_interval=self.live_interval(cls),
            recompute=self.recompute_cost(cls),
            cpu_swap=self.cpu_swap_cost(cls),
            d2d_swap=self.d2d_swap_cost(cls, stripe) if stripe is not None else None,
        )

    def extra_overhead(self, cls: TensorClass, action: str) -> float:
        """Extra delay the currently-assigned action imposes.

        Used by the planner's refinement loop to pick which
        assignments to upgrade to D2D (Section III-D's filter step).
        """
        costs = self.costs_for(cls)
        if action == "recompute":
            extra = costs.recompute_extra
            return extra if extra is not None else 0.0
        if action == "cpu-swap":
            return costs.cpu_swap_extra
        return 0.0
