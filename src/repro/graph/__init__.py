"""Data-flow graph view of a pipelined training job.

Tensors are tracked at the granularity MPress plans over: one
activation tensor per (stage, layer) class with one instance per
in-flight microbatch, plus per-stage optimizer-state and stashed-
parameter tensors.  Liveness analysis (Section III-D) computes the
live intervals the cost model compares against swap costs.
"""

from repro.graph.tensor import TensorKind, TensorClass, TensorInstance, tensor_classes_for
from repro.graph.dataflow import ComputeNode, Program, build_program
from repro.graph.liveness import LiveInterval, live_intervals

__all__ = [
    "TensorKind",
    "TensorClass",
    "TensorInstance",
    "tensor_classes_for",
    "ComputeNode",
    "Program",
    "build_program",
    "LiveInterval",
    "live_intervals",
]
