"""The data-flow program: compute nodes and their dependencies.

``build_program`` lowers a (stage plan, schedule) pair into explicit
compute nodes with cross-stage dependency edges — the graph the
paper's *rewriter* instruments with memory-saving operators
(Figure 5, step 4) and the simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.pipeline.schedule import OpKind, PipelineSchedule
from repro.pipeline.stage import StagePlan

NodeKey = Tuple[str, int, int]  # (kind, stage, microbatch) — opt uses minibatch


@dataclass
class ComputeNode:
    """One scheduled computation with dependency edges."""

    kind: OpKind
    stage: int
    microbatch: int      # -1 for optimizer
    minibatch: int
    order: int           # position in its stage's issue order
    deps: List["ComputeNode"] = field(default_factory=list)

    @property
    def key(self) -> NodeKey:
        index = self.minibatch if self.kind is OpKind.OPTIMIZER else self.microbatch
        return (self.kind.value, self.stage, index)

    @property
    def name(self) -> str:
        kind, stage, index = self.key
        return f"{kind}.s{stage}.m{index}"


@dataclass
class Program:
    """Compute nodes grouped per stage in issue order."""

    stage_plan: StagePlan
    schedule: PipelineSchedule
    per_stage: List[List[ComputeNode]]
    by_key: Dict[NodeKey, ComputeNode]
    _flat: Optional[List[ComputeNode]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_stages(self) -> int:
        return len(self.per_stage)

    def node(self, kind: OpKind, stage: int, index: int) -> ComputeNode:
        key = (kind.value, stage, index)
        found = self.by_key.get(key)
        if found is None:
            raise ScheduleError(f"no node {key} in program")
        return found

    def nodes(self) -> List[ComputeNode]:
        # Cached: lowering walks the full node list several times per
        # plan and the per-stage grouping never changes after build.
        if self._flat is None:
            self._flat = [node for stage_nodes in self.per_stage for node in stage_nodes]
        return self._flat

    def first_backward_by_minibatch(self, stage: int) -> Dict[int, ComputeNode]:
        """First backward node per minibatch on ``stage``, in issue order.

        Anchors chunked optimizer-state prefetches: the minibatch's
        swap-ins may begin once its first backward starts clearing.
        """
        first: Dict[int, ComputeNode] = {}
        for node in self.per_stage[stage]:
            if node.kind is OpKind.BACKWARD and node.minibatch not in first:
                first[node.minibatch] = node
        return first

    def predecessor_on_stage(self, node: ComputeNode, lead: int) -> Optional[ComputeNode]:
        """The compute node ``lead`` positions before ``node`` on its stage.

        Used to anchor swap-in prefetches: a swap-in may begin once
        this predecessor finishes, keeping the copy off the critical
        path (Section III-A's overlap requirement).
        """
        if lead < 1:
            raise ScheduleError("prefetch lead must be >= 1")
        position = node.order - lead
        if position < 0:
            return None
        return self.per_stage[node.stage][position]


def build_program(stage_plan: StagePlan, schedule: PipelineSchedule) -> Program:
    """Lower a schedule into compute nodes with cross-stage edges.

    Edges encode the pipeline data flow of Figure 1: a stage's
    forward depends on its upstream neighbour's forward of the same
    microbatch (activation arrival), a stage's backward on its
    downstream neighbour's backward (gradient arrival), and each
    backward on its own forward.  Same-stage issue order is implicit
    in the in-order compute stream.
    """
    if stage_plan.n_stages != schedule.n_stages:
        raise ScheduleError(
            f"stage plan has {stage_plan.n_stages} stages, schedule {schedule.n_stages}"
        )
    per_stage: List[List[ComputeNode]] = []
    by_key: Dict[NodeKey, ComputeNode] = {}
    for stage in range(schedule.n_stages):
        nodes = []
        for order, op in enumerate(schedule.stage_ops(stage)):
            node = ComputeNode(
                kind=op.kind,
                stage=stage,
                microbatch=op.microbatch,
                minibatch=op.minibatch,
                order=order,
            )
            nodes.append(node)
            if node.key in by_key:
                raise ScheduleError(f"duplicate node {node.key}")
            by_key[node.key] = node
        per_stage.append(nodes)

    program = Program(
        stage_plan=stage_plan, schedule=schedule, per_stage=per_stage, by_key=by_key
    )
    last = schedule.n_stages - 1
    for node in program.nodes():
        if node.kind is OpKind.FORWARD and node.stage > 0:
            node.deps.append(program.node(OpKind.FORWARD, node.stage - 1, node.microbatch))
        elif node.kind is OpKind.BACKWARD:
            node.deps.append(program.node(OpKind.FORWARD, node.stage, node.microbatch))
            if node.stage < last:
                node.deps.append(
                    program.node(OpKind.BACKWARD, node.stage + 1, node.microbatch)
                )
    return program
