"""Tensor classes: the units MPress assigns memory-saving actions to.

A :class:`TensorClass` groups all microbatch instances of one logical
tensor — e.g. "the saved activations of layer 17 on stage 2" — since
the planner assigns one strategy per class (Table IV reports plans at
stage granularity; we keep layer granularity and aggregate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.models import costs
from repro.pipeline.schedule import PipelineSchedule
from repro.pipeline.stage import StagePlan


class TensorKind(enum.Enum):
    ACTIVATION = "activation"
    OPTIMIZER_STATE = "optimizer"
    STASHED_PARAMS = "stash"
    WORKING_STATE = "working"  # live params + gradients; never reducible


@dataclass(frozen=True)
class TensorClass:
    """One logical tensor the planner can act on."""

    kind: TensorKind
    stage: int
    layer: int          # model-wide layer index; -1 for per-stage state
    size: int           # bytes per instance
    instances: int      # concurrent instances at peak (in-flight microbatches)
    recomputable: bool  # only activations can be recomputed

    def __post_init__(self) -> None:
        if self.size < 0 or self.instances < 0:
            raise ConfigurationError("tensor class size/instances must be non-negative")

    @property
    def key(self) -> tuple:
        return (self.kind.value, self.stage, self.layer)

    @property
    def peak_bytes(self) -> int:
        """Peak memory this class pins on its device."""
        return self.size * self.instances


@dataclass(frozen=True)
class TensorInstance:
    """One microbatch instance of a tensor class."""

    cls: TensorClass
    microbatch: int

    @property
    def name(self) -> str:
        kind, stage, layer = self.cls.key
        return f"{kind}.s{stage}.l{layer}.m{self.microbatch}"


def tensor_classes_for(
    stage_plan: StagePlan,
    schedule: PipelineSchedule,
    microbatch_size: int,
    bytes_per_element: int = 2,
) -> List[TensorClass]:
    """Enumerate every reducible tensor class of a training job.

    Working parameters and gradients are included (so memory accounting
    is complete) but marked irreducible.
    """
    param_bytes, grad_bytes, optimizer_bytes = costs.state_bytes_per_param(
        bytes_per_element
    )
    classes: List[TensorClass] = []
    for stage in stage_plan.stages:
        sid = stage.stage_id
        in_flight = schedule.max_in_flight(sid)
        versions = schedule.weight_versions(sid)
        for layer in stage.layers:
            classes.append(
                TensorClass(
                    kind=TensorKind.ACTIVATION,
                    stage=sid,
                    layer=layer.index,
                    size=layer.activation_bytes(microbatch_size, bytes_per_element),
                    instances=in_flight,
                    recomputable=True,
                )
            )
        classes.append(
            TensorClass(
                kind=TensorKind.OPTIMIZER_STATE,
                stage=sid,
                layer=-1,
                size=stage.params * optimizer_bytes,
                instances=1,
                recomputable=False,
            )
        )
        if versions > 1:
            # One instance per stashed weight version beyond the
            # working copy; stashed per in-flight minibatch
            # (PipeDream's asynchronous scheduling, Section II-C).
            classes.append(
                TensorClass(
                    kind=TensorKind.STASHED_PARAMS,
                    stage=sid,
                    layer=-1,
                    size=stage.params * param_bytes,
                    instances=versions - 1,
                    recomputable=False,
                )
            )
        classes.append(
            TensorClass(
                kind=TensorKind.WORKING_STATE,
                stage=sid,
                layer=-1,
                size=stage.params * (param_bytes + grad_bytes),
                instances=1,
                recomputable=False,
            )
        )
    return classes
