"""Live-interval analysis over an execution trace.

The live interval of a tensor is "the time duration between its
generation and the subsequent usage" (paper, footnote 1).  For an
activation tensor that is the gap between its layer's forward pass
finishing and the same layer's backward pass starting; for optimizer
state, the gap between consecutive optimizer steps; for stashed
parameters, the end of a microbatch's forward to the start of its
backward on that stage.

The planner compares these intervals against swap costs: a swap whose
out+in time fits inside the live interval is free (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.tensor import TensorClass, TensorKind
from repro.sim.trace import Trace


@dataclass(frozen=True)
class LiveInterval:
    """Aggregated liveness of one tensor class across microbatches."""

    cls_key: tuple
    mean: float
    minimum: float
    samples: int


class _TraceIndex:
    """Compute-event lookups keyed by (stage, layer, microbatch)."""

    def __init__(self, trace: Trace, stage_of_device: Dict[int, int]):
        self.fwd_end: Dict[Tuple[int, int, int], float] = {}
        self.bwd_start: Dict[Tuple[int, int, int], float] = {}
        self.stage_fwd_end: Dict[Tuple[int, int], float] = {}
        self.stage_bwd_start: Dict[Tuple[int, int], float] = {}
        self.opt_ends: Dict[int, List[float]] = {}
        for event in trace.events:
            stage = stage_of_device.get(event.device)
            if stage is None:
                continue
            if event.kind == "fwd":
                self.fwd_end[(stage, event.layer, event.microbatch)] = event.end
                key = (stage, event.microbatch)
                self.stage_fwd_end[key] = max(
                    self.stage_fwd_end.get(key, 0.0), event.end
                )
            elif event.kind == "bwd":
                self.bwd_start[(stage, event.layer, event.microbatch)] = event.start
                key = (stage, event.microbatch)
                current = self.stage_bwd_start.get(key)
                if current is None or event.start < current:
                    self.stage_bwd_start[key] = event.start
            elif event.kind == "opt":
                self.opt_ends.setdefault(stage, []).append(event.end)


def live_intervals(
    trace: Trace,
    classes: List[TensorClass],
    stage_of_device: Dict[int, int],
) -> Dict[tuple, LiveInterval]:
    """Per-class live intervals measured from a profiling trace.

    ``trace`` events carry the *device* they ran on; ``stage_of_device``
    maps device index back to the pipeline stage.
    """
    index = _TraceIndex(trace, stage_of_device)
    results: Dict[tuple, LiveInterval] = {}
    for cls in classes:
        samples = _samples_for(cls, index)
        if not samples:
            continue
        results[cls.key] = LiveInterval(
            cls_key=cls.key,
            mean=sum(samples) / len(samples),
            minimum=min(samples),
            samples=len(samples),
        )
    return results


def _samples_for(cls: TensorClass, index: _TraceIndex) -> List[float]:
    if cls.kind is TensorKind.ACTIVATION:
        gaps = []
        for (stage, layer, mb), start in index.bwd_start.items():
            if stage == cls.stage and layer == cls.layer:
                end = index.fwd_end.get((stage, layer, mb))
                if end is not None:
                    gaps.append(max(0.0, start - end))
        return gaps
    if cls.kind is TensorKind.STASHED_PARAMS:
        gaps = []
        for (stage, mb), start in index.stage_bwd_start.items():
            if stage == cls.stage:
                end = index.stage_fwd_end.get((stage, mb))
                if end is not None:
                    gaps.append(max(0.0, start - end))
        return gaps
    if cls.kind is TensorKind.OPTIMIZER_STATE:
        steps = sorted(index.opt_ends.get(cls.stage, []))
        return [later - earlier for earlier, later in zip(steps, steps[1:])]
    return []  # working state is permanently live
