"""Unit helpers used throughout the library.

All byte quantities in the library are plain ``int`` bytes; all times
are ``float`` seconds; all bandwidths are ``float`` bytes/second.
These helpers exist so call sites read like the paper's prose
(``32 * GiB``, ``25 * GBps``) instead of raw exponents.
"""

from __future__ import annotations

# Binary byte multiples (memory capacities).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal byte multiples (link bandwidths, as vendors quote them).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Bandwidth: bytes per second.
MBps = MB
GBps = GB

# Time.
US = 1e-6
MS = 1e-3

# Compute.
TFLOP = 1e12


def fmt_bytes(n: float) -> str:
    """Render a byte count with a human-readable binary suffix.

    >>> fmt_bytes(3 * GiB)
    '3.00 GiB'
    """
    value = float(n)
    for suffix, scale in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {suffix}"
    return f"{value:.0f} B"


def fmt_time(seconds: float) -> str:
    """Render a duration using the most natural unit.

    >>> fmt_time(0.0042)
    '4.20 ms'
    """
    if abs(seconds) >= 1.0:
        return f"{seconds:.2f} s"
    if abs(seconds) >= MS:
        return f"{seconds / MS:.2f} ms"
    return f"{seconds / US:.1f} us"


def fmt_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth in GB/s (the unit the paper uses)."""
    return f"{bytes_per_second / GBps:.1f} GB/s"
