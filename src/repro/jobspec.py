"""JSON job specifications for the CLI and scripting.

A job spec is a small JSON document describing one training job —
model, server, pipeline system, batch geometry — so experiments are
reproducible from checked-in files instead of command lines::

    {
      "model": "gpt-10.3",
      "server": "dgx1",
      "pipeline": "dapple",
      "microbatch_size": 2,
      "microbatches_per_minibatch": 16,
      "n_minibatches": 2
    }

Cluster keys (``nodes``, ``fabric``, ``tp``, ``dp``, ``pp``,
``sequence_parallel``) describe a 3D-parallel run; they are ignored by
:func:`load_job` (which builds the per-replica job) and consumed by
:func:`cluster_from_spec` / :func:`cluster_config_from_spec`.

``"shape": "auto"`` hands the (tp, dp, pp) choice to the unified
auto-parallel planner (:mod:`repro.autoplan`) instead of reading the
explicit degrees; ``budget_gib`` optionally tightens the per-GPU
memory budget the shape search plans under.

``"workload": "inference"`` switches a task spec to an LLM-serving
simulation (:mod:`repro.inference`); the optional ``"inference"``
object carries the arrival process, KV pool cap, and swap policy::

    {"model": "gpt-5.3", "server": "dgx1", "workload": "inference",
     "inference": {"n_requests": 32, "kv_swap": "d2d"}}
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict

from repro.errors import ConfigurationError
from repro.job import TrainingJob, dapple_job, gpipe_job, pipedream_job

_REQUIRED = ("model", "server")
_OPTIONAL = {
    "pipeline": None,
    "microbatch_size": None,
    "microbatches_per_minibatch": None,
    "n_minibatches": None,
    "mfu": None,
}
_CLUSTER = {
    "nodes": 1,
    "fabric": "ib-edr",
    "tp": 1,
    "dp": 1,
    "pp": 0,
    "sequence_parallel": False,
    "shape": "explicit",
    "budget_gib": None,
}
_SERVING = {
    "workload": "training",
    "inference": None,
}
_BUILDERS = {"pipedream": pipedream_job, "dapple": dapple_job, "gpipe": gpipe_job}


def job_from_spec(spec: Dict) -> TrainingJob:
    """Build a :class:`TrainingJob` from a parsed spec dict."""
    unknown = (set(spec) - set(_REQUIRED) - set(_OPTIONAL) - set(_CLUSTER)
               - set(_SERVING))
    if unknown:
        raise ConfigurationError(f"unknown job spec keys: {sorted(unknown)}")
    for key in _REQUIRED:
        if key not in spec:
            raise ConfigurationError(f"job spec missing required key {key!r}")

    from repro.cli import _build_server, _default_pipeline, _parse_model

    model = _parse_model(spec["model"])
    server = _build_server(spec["server"])
    pipeline = spec.get("pipeline") or _default_pipeline(spec["model"])
    builder = _BUILDERS.get(pipeline)
    if builder is None:
        raise ConfigurationError(f"unknown pipeline {pipeline!r}")

    kwargs = {}
    for key in ("microbatch_size", "microbatches_per_minibatch",
                "n_minibatches", "mfu"):
        if spec.get(key) is not None:
            kwargs[key] = spec[key]
    return builder(model, server, **kwargs)


def load_job(path: str) -> TrainingJob:
    """Read a job spec file and build the job."""
    with open(path) as handle:
        try:
            spec = json.load(handle)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"{path}: invalid JSON ({error})")
    if not isinstance(spec, dict):
        raise ConfigurationError(f"{path}: job spec must be a JSON object")
    return job_from_spec(spec)


def cluster_from_spec(spec: Dict, force: bool = False):
    """The spec's :class:`~repro.hardware.cluster.Cluster`, or ``None``.

    ``None`` when the spec describes a single box with no tensor
    parallelism — callers fall back to the plain job path.  ``force``
    builds the (one-server) cluster anyway; the autoplan path needs a
    real cluster even for a single box, since the shape search itself
    decides whether tensor parallelism pays.
    """
    from repro.cli import SERVERS
    from repro.hardware.cluster import make_cluster
    from repro.hardware.links import FABRICS

    nodes = int(spec.get("nodes", 1) or 1)
    if not force and nodes <= 1 and int(spec.get("tp", 1)) <= 1:
        return None
    fabric_name = spec.get("fabric", "ib-edr")
    fabric = FABRICS.get(fabric_name)
    if fabric is None:
        raise ConfigurationError(
            f"unknown fabric {fabric_name!r}; options: {sorted(FABRICS)}")
    builder = SERVERS.get(spec["server"])
    if builder is None:
        raise ConfigurationError(
            f"unknown server {spec['server']!r}; options: {sorted(SERVERS)}")
    return make_cluster(builder, nodes, name=f"{nodes}x-{spec['server']}",
                        fabric=fabric)


def cluster_config_from_spec(spec: Dict):
    """The spec's :class:`~repro.parallel.cluster.ClusterConfig`."""
    from repro.parallel.cluster import ClusterConfig

    return ClusterConfig(
        tp=int(spec.get("tp", 1)),
        dp=int(spec.get("dp", 1)),
        pp=int(spec.get("pp", 0)),
        sequence_parallel=bool(spec.get("sequence_parallel", False)),
    )


def autoplan_config_from_spec(spec: Dict):
    """The spec's :class:`~repro.autoplan.AutoPlanConfig`, or ``None``.

    ``None`` unless the spec says ``"shape": "auto"``.  Explicit
    parallelism degrees contradict an automatic shape search, so
    mixing them is an error rather than a silent override.
    """
    shape = spec.get("shape", "explicit")
    if shape not in ("explicit", "auto"):
        raise ConfigurationError(
            f"unknown shape {shape!r}; options: ['auto', 'explicit']")
    if shape != "auto":
        if spec.get("budget_gib") is not None:
            raise ConfigurationError(
                'budget_gib only applies to "shape": "auto" specs')
        return None
    for key, default in (("tp", 1), ("dp", 1), ("pp", 0)):
        if int(spec.get(key, default) or default) != default:
            raise ConfigurationError(
                f'"shape": "auto" picks tp/dp/pp itself; drop the '
                f"explicit {key}={spec[key]}")
    from repro.autoplan import AutoPlanConfig

    budget = spec.get("budget_gib")
    return AutoPlanConfig(
        budget_gib=float(budget) if budget is not None else None,
        sequence_parallel=bool(spec.get("sequence_parallel", False)),
    )


def inference_config_from_spec(spec: Dict):
    """The spec's :class:`~repro.inference.InferenceConfig`, or ``None``.

    ``None`` for training specs.  ``"workload": "inference"`` switches
    the spec to a serving simulation; the optional ``"inference"``
    object carries :class:`InferenceConfig` fields (arrival process,
    KV pool cap, swap policy, ...).  Cluster keys describe training
    sharding and contradict a serving spec, so mixing is an error.
    """
    workload = spec.get("workload", "training")
    if workload not in ("training", "inference"):
        raise ConfigurationError(
            f"unknown workload {workload!r}; options: "
            f"['inference', 'training']")
    if workload != "inference":
        if spec.get("inference") is not None:
            raise ConfigurationError(
                '"inference" settings only apply to '
                '"workload": "inference" specs')
        return None
    for key, default in (("nodes", 1), ("tp", 1), ("dp", 1), ("pp", 0)):
        if int(spec.get(key, default) or default) != default:
            raise ConfigurationError(
                f'"workload": "inference" specs describe one server; '
                f"drop the cluster key {key}={spec[key]}")
    if spec.get("shape", "explicit") == "auto":
        raise ConfigurationError(
            '"shape": "auto" is a training-shape search; inference '
            "specs set pp inside the \"inference\" object instead")

    from repro.inference import InferenceConfig

    params = spec.get("inference") or {}
    if not isinstance(params, dict):
        raise ConfigurationError('"inference" must be a JSON object')
    fields = {f.name for f in dataclasses.fields(InferenceConfig)}
    unknown = set(params) - fields
    if unknown:
        raise ConfigurationError(
            f"unknown inference keys: {sorted(unknown)}")
    params = dict(params)
    if params.get("trace") is not None:
        params["trace"] = tuple(tuple(entry) for entry in params["trace"])
    return InferenceConfig(**params)


_TASK = {
    "label": None,
    "system": "mpress",
    "faults_seed": None,
    "faults_horizon": 60.0,
    "hybrid_dp": None,
}


def task_from_spec(spec: Dict) -> "SimTask":
    """Build a runtime :class:`~repro.runtime.SimTask` from a spec dict.

    This is the deserialization path of the sweep server (``repro
    serve``): one task spec is a job spec plus task-level keys —
    ``system`` (default ``"mpress"``), a cosmetic ``label``,
    ``faults_seed``/``faults_horizon`` (a seeded random campaign over
    ``n_gpus`` devices), and ``hybrid_dp`` (a DP×PP hybrid run).
    Cluster specs (``nodes``/``tp``/...) lower to cluster tasks, the
    same split as :func:`cluster_from_spec`; ``"shape": "auto"``
    specs lower to autoplan tasks (the shape search picks tp/dp/pp).
    """
    from repro.faults.spec import random_schedule
    from repro.runtime.task import SimTask

    if not isinstance(spec, dict):
        raise ConfigurationError("task spec must be a JSON object")
    spec = dict(spec)
    task_keys = {key: spec.pop(key, default)
                 for key, default in _TASK.items()}
    job = job_from_spec(spec)
    inference = inference_config_from_spec(spec)
    if inference is not None:
        if task_keys["faults_seed"] is not None:
            raise ConfigurationError(
                "fault injection applies to training tasks, not "
                '"workload": "inference"')
        if task_keys["hybrid_dp"] is not None:
            raise ConfigurationError(
                "hybrid_dp applies to training tasks, not "
                '"workload": "inference"')
        label = task_keys["label"]
        if label is None:
            label = (f"serving/{spec['model']}/{spec['server']}"
                     f"/kv={inference.kv_swap}")
        return SimTask(label=label, job=job, system=task_keys["system"],
                       inference=inference)
    autoplan = autoplan_config_from_spec(spec)
    if autoplan is not None:
        cluster = cluster_from_spec(spec, force=True)
        cluster_config = None
    else:
        cluster = cluster_from_spec(spec)
        cluster_config = cluster_config_from_spec(spec) \
            if cluster is not None else None
    system = task_keys["system"]
    faults = None
    if task_keys["faults_seed"] is not None:
        faults = random_schedule(
            seed=int(task_keys["faults_seed"]),
            n_devices=job.server.n_gpus,
            horizon=float(task_keys["faults_horizon"]),
        )
    hybrid = None
    if task_keys["hybrid_dp"] is not None:
        from repro.parallel.hybrid import HybridConfig

        hybrid = HybridConfig(dp=int(task_keys["hybrid_dp"]))
    label = task_keys["label"]
    if label is None:
        label = f"{spec['model']}/{spec['server']}/{system}"
        if autoplan is not None:
            label += "/shape=auto"
        if cluster_config is not None:
            label += (f"/tp={cluster_config.tp},dp={cluster_config.dp},"
                      f"pp={cluster_config.pp}")
        if hybrid is not None:
            label += f"/dp={hybrid.dp}"
        if task_keys["faults_seed"] is not None:
            label += f"/faults={int(task_keys['faults_seed'])}"
    return SimTask(label=label, job=job, system=system, faults=faults,
                   hybrid=hybrid, cluster=cluster,
                   cluster_config=cluster_config, autoplan=autoplan)


def job_to_spec(job: TrainingJob, model_spec: str, server_name: str) -> Dict:
    """Render a job back into a spec dict (for saving experiments)."""
    return {
        "model": model_spec,
        "server": server_name,
        "pipeline": job.system,
        "microbatch_size": job.microbatch_size,
        "microbatches_per_minibatch": job.microbatches_per_minibatch,
        "n_minibatches": job.n_minibatches,
        "mfu": job.mfu,
    }
