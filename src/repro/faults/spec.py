"""Fault specifications and schedules.

Production multi-GPU training is dominated by *partial* failures:
straggling GPUs, degraded NVLink/PCIe lanes, mid-run device loss, and
host-side storage stalls.  A :class:`FaultSpec` describes one such
timed event; a :class:`FaultSchedule` is the ordered set injected
into one simulation (see :mod:`repro.faults.inject`).

Four fault kinds cover the failure modes the resilience literature
models (RAPID-LLM's failure -> checkpoint/restart -> recomputation
pipeline):

* ``device-slowdown`` — a GPU's compute runs at ``factor`` of
  nominal speed over ``[start, start + duration)`` (thermal
  throttling, a noisy neighbour, ECC retirement pressure).
* ``link-degrade`` — the NVLink lanes between ``device`` and
  ``peer`` (or, with ``peer=None``, the device's PCIe channels)
  deliver ``factor`` of nominal bandwidth over the window.
* ``device-fail`` — fail-stop loss of ``device`` at ``start``; the
  run pays a checkpoint-restore (restart latency + state reload +
  lost-work re-execution).
* ``nvme-stall`` — the host NVMe queues deliver ``factor`` of
  nominal bandwidth over the window (GC pauses, saturated SSDs).

Schedules serialize to JSON and can be generated from a seed for
randomized-but-reproducible fault campaigns.
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    DEVICE_SLOWDOWN = "device-slowdown"
    LINK_DEGRADE = "link-degrade"
    DEVICE_FAIL = "device-fail"
    NVME_STALL = "nvme-stall"


_WINDOWED = (FaultKind.DEVICE_SLOWDOWN, FaultKind.LINK_DEGRADE, FaultKind.NVME_STALL)


@dataclass(frozen=True)
class FaultSpec:
    """One timed fault event.

    ``factor`` is the remaining speed fraction in ``(0, 1]`` for
    windowed kinds (0.5 = half speed); device failures instead carry
    a ``restart_latency`` — the fixed part of the recovery (node
    replacement, process respawn, NCCL re-init) on top of state
    reload and lost-work re-execution, which the simulator computes.
    """

    kind: FaultKind
    start: float
    duration: float = 0.0
    device: Optional[int] = None
    peer: Optional[int] = None
    factor: float = 1.0
    restart_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"fault start {self.start} must be >= 0")
        if self.duration < 0:
            raise ConfigurationError(f"fault duration {self.duration} must be >= 0")
        if self.kind in _WINDOWED and not 0 < self.factor <= 1:
            raise ConfigurationError(
                f"{self.kind.value}: factor {self.factor} must be in (0, 1]"
            )
        if self.kind in (FaultKind.DEVICE_SLOWDOWN, FaultKind.DEVICE_FAIL,
                         FaultKind.LINK_DEGRADE):
            if self.device is None or self.device < 0:
                raise ConfigurationError(f"{self.kind.value} needs a device index")
        if self.kind is FaultKind.DEVICE_FAIL and self.restart_latency < 0:
            raise ConfigurationError("restart_latency must be >= 0")
        if self.peer is not None and self.peer == self.device:
            raise ConfigurationError("link-degrade peer must differ from device")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def is_window(self) -> bool:
        return self.kind in _WINDOWED

    def active_at(self, time: float) -> bool:
        """Whether the window covers ``time`` (half-open interval)."""
        return self.is_window and self.start <= time < self.end

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind.value,
            "start": self.start,
            "duration": self.duration,
            "device": self.device,
            "peer": self.peer,
            "factor": self.factor,
            "restart_latency": self.restart_latency,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        return cls(
            kind=FaultKind(data["kind"]),
            start=float(data["start"]),
            duration=float(data.get("duration", 0.0)),
            device=data.get("device"),
            peer=data.get("peer"),
            factor=float(data.get("factor", 1.0)),
            restart_latency=float(data.get("restart_latency", 0.0)),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of faults injected into one simulation."""

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def is_empty(self) -> bool:
        return not self.faults

    @property
    def horizon(self) -> float:
        """Latest instant any fault touches."""
        return max((f.end for f in self.faults), default=0.0)

    def windows(self) -> List[FaultSpec]:
        return [f for f in self.faults if f.is_window]

    def failures(self) -> List[FaultSpec]:
        return [f for f in self.faults if f.kind is FaultKind.DEVICE_FAIL]

    def for_device(self, device: int) -> List[FaultSpec]:
        return [f for f in self.faults if f.device == device or f.peer == device]

    def compute_factor(self, device: int, time: Optional[float] = None) -> float:
        """Combined compute-speed factor for ``device``.

        With ``time`` given, only windows active at that instant
        count; without, the worst (product of all windows) — the
        planner's conservative view.
        """
        factor = 1.0
        for fault in self.faults:
            if fault.kind is not FaultKind.DEVICE_SLOWDOWN or fault.device != device:
                continue
            if time is None or fault.active_at(time):
                factor *= fault.factor
        return factor

    def pcie_factor(self, device: int) -> float:
        """Worst-case PCIe bandwidth factor for ``device``."""
        factor = 1.0
        for fault in self.faults:
            if (fault.kind is FaultKind.LINK_DEGRADE and fault.device == device
                    and fault.peer is None):
                factor *= fault.factor
        return factor

    def nvme_factor(self) -> float:
        """Worst-case NVMe bandwidth factor."""
        factor = 1.0
        for fault in self.faults:
            if fault.kind is FaultKind.NVME_STALL:
                factor *= fault.factor
        return factor

    def degraded_devices(self) -> Set[int]:
        """Devices any fault touches (slow, failed, or on a bad link).

        The planner avoids parking D2D-swapped state on these.
        """
        touched: Set[int] = set()
        for fault in self.faults:
            if fault.device is not None:
                touched.add(fault.device)
            if fault.peer is not None:
                touched.add(fault.peer)
        return touched

    def scaled(self, severity: float) -> "FaultSchedule":
        """A severity-scaled copy: ``severity`` 0 is fault-free-like,
        1 is this schedule, larger is harsher.

        Window factors move as ``factor ** severity`` (monotone in
        severity) and restart latencies scale linearly; timing is
        unchanged, so harsher copies perturb the same instants.
        """
        if severity < 0:
            raise ConfigurationError(f"severity {severity} must be >= 0")
        scaled = []
        for fault in self.faults:
            if fault.is_window:
                scaled.append(replace(fault, factor=fault.factor ** severity))
            elif fault.kind is FaultKind.DEVICE_FAIL:
                scaled.append(
                    replace(fault, restart_latency=fault.restart_latency * severity)
                )
            else:
                scaled.append(fault)
        return FaultSchedule(tuple(scaled))

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"faults": [f.to_dict() for f in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        data = json.loads(text)
        if not isinstance(data, dict) or "faults" not in data:
            raise ValueError("missing top-level 'faults' list")
        return cls(tuple(FaultSpec.from_dict(d) for d in data["faults"]))


def save_faults(schedule: FaultSchedule, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(schedule.to_json())


def load_faults(path: str) -> FaultSchedule:
    with open(path) as handle:
        return FaultSchedule.from_json(handle.read())


def random_schedule(
    seed: int,
    n_devices: int,
    horizon: float,
    n_faults: Optional[int] = None,
    mtbf: Optional[float] = None,
    failure_weight: float = 0.15,
    min_factor: float = 0.3,
    max_factor: float = 0.9,
    restart_latency: Optional[float] = None,
    kinds: Sequence[FaultKind] = tuple(FaultKind),
) -> FaultSchedule:
    """Deterministic seeded fault campaign.

    Fault instants come from a Poisson process with mean-time-between-
    failures ``mtbf`` when given, else ``n_faults`` (default: one per
    two devices) uniform instants over ``[0, horizon)``.  The same
    seed always produces the same schedule, byte for byte.
    """
    if horizon <= 0:
        raise ConfigurationError(f"campaign horizon {horizon} must be positive")
    if n_devices < 1:
        raise ConfigurationError("campaign needs at least one device")
    rng = random.Random(seed)
    times: List[float] = []
    if mtbf is not None:
        if mtbf <= 0:
            raise ConfigurationError(f"mtbf {mtbf} must be positive")
        t = rng.expovariate(1.0 / mtbf)
        while t < horizon:
            times.append(t)
            t += rng.expovariate(1.0 / mtbf)
    else:
        count = n_faults if n_faults is not None else max(1, n_devices // 2)
        times = sorted(rng.uniform(0.0, horizon) for _ in range(count))
    windowed = [k for k in kinds if k is not FaultKind.DEVICE_FAIL]
    allow_fail = FaultKind.DEVICE_FAIL in kinds
    faults: List[FaultSpec] = []
    for t in times:
        if allow_fail and (not windowed or rng.random() < failure_weight):
            faults.append(
                FaultSpec(
                    kind=FaultKind.DEVICE_FAIL,
                    start=t,
                    device=rng.randrange(n_devices),
                    restart_latency=(
                        restart_latency if restart_latency is not None
                        else 0.02 * horizon
                    ),
                )
            )
            continue
        kind = rng.choice(windowed)
        factor = rng.uniform(min_factor, max_factor)
        duration = rng.uniform(0.05, 0.25) * horizon
        if kind is FaultKind.DEVICE_SLOWDOWN:
            faults.append(FaultSpec(kind=kind, start=t, duration=duration,
                                    device=rng.randrange(n_devices), factor=factor))
        elif kind is FaultKind.LINK_DEGRADE:
            device = rng.randrange(n_devices)
            # Half the draws hit an NVLink pair, half the device's PCIe.
            peer: Optional[int] = None
            if n_devices > 1 and rng.random() < 0.5:
                peer = rng.randrange(n_devices - 1)
                if peer >= device:
                    peer += 1
            faults.append(FaultSpec(kind=kind, start=t, duration=duration,
                                    device=device, peer=peer, factor=factor))
        else:
            faults.append(FaultSpec(kind=kind, start=t, duration=duration,
                                    factor=factor))
    return FaultSchedule(tuple(faults))
