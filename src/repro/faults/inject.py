"""Inject a fault schedule into a running simulation.

The :class:`FaultInjector` arms engine control callbacks for every
fault in a :class:`~repro.faults.spec.FaultSchedule`:

* Windowed faults (slowdown, link degrade, NVMe stall) open and
  close by changing the delivery *rate* of the affected streams;
  the engine rescales the remaining work of whatever is running, so
  a window opening mid-kernel charges exactly the slowed portion.
  Overlapping windows on one resource compose multiplicatively and
  unwind exactly (the rate is recomputed from the set of active
  factors, never by repeated division).
* Device failures model synchronous checkpoint-restore: the whole
  pipeline stalls for restart latency + state reload over PCIe +
  re-execution of work lost since the last completed minibatch
  (checkpoints are taken at minibatch boundaries).  The stall is a
  pure shift — no task starts inside the outage window — which is
  what :func:`repro.sim.audit.audit_simulation` verifies.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.faults.report import FailureRecord, ResilienceReport
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.hardware.bandwidth import transfer_time
from repro.sim.events import DeviceFailed, FaultWindowClosed, FaultWindowOpened
from repro.sim.trace import TraceEvent


class FaultInjector:
    """Wires one fault schedule into one simulation's engine.

    When an event ``bus`` is given, failures and fault windows are
    published on it (:class:`~repro.sim.events.DeviceFailed`,
    :class:`~repro.sim.events.FaultWindowOpened`/``Closed``) and trace
    recording is left to bus subscribers; without one the injector
    writes recovery trace events directly (legacy executor path).
    """

    def __init__(self, schedule: FaultSchedule, engine, streams, job,
                 memory, trace, record_trace: bool = True, bus=None):
        self.schedule = schedule
        self.engine = engine
        self.streams = streams
        self.job = job
        self.memory = memory
        self.trace = trace
        self.record_trace = record_trace
        self.bus = bus
        self.failures: List[FailureRecord] = []
        # Active window factors per stream key; the rate applied is
        # their product, so unwinding a window restores exactly 1.0.
        self._active: Dict[Hashable, List[float]] = {}
        # End of the in-progress recovery; a failure landing inside
        # it is handled once the machine is back up.
        self._outage_until = 0.0

    # -- arming ----------------------------------------------------------

    def arm(self) -> None:
        """Schedule every fault's control callbacks on the engine."""
        for fault in self.schedule:
            if fault.kind is FaultKind.DEVICE_FAIL:
                self.engine.schedule_callback(
                    fault.start, lambda f=fault: self._on_fail(f)
                )
            else:
                keys = self._stream_keys(fault)
                self.engine.schedule_callback(
                    fault.start, lambda f=fault, k=keys: self._open_window(f, k)
                )
                self.engine.schedule_callback(
                    fault.end, lambda f=fault, k=keys: self._close_window(f, k)
                )

    def _stream_keys(self, fault: FaultSpec) -> List[Hashable]:
        """Stream keys a windowed fault throttles."""
        if fault.kind is FaultKind.DEVICE_SLOWDOWN:
            return [("compute", fault.device), ("optstep", fault.device)]
        if fault.kind is FaultKind.NVME_STALL:
            return [("nvme", "read"), ("nvme", "write")]
        # Link degrade: the NVLink lanes between the pair, or the
        # device's PCIe channels when no peer is named.  A pair with
        # no direct lane routes its transfers through host memory, so
        # degrade the PCIe staging path instead.
        if fault.peer is None:
            return [("pcie_d2h", fault.device), ("pcie_h2d", fault.device)]
        topology = self.job.server.topology
        if topology.lanes(fault.device, fault.peer) > 0:
            return (topology.lane_channels(fault.device, fault.peer)
                    + topology.lane_channels(fault.peer, fault.device))
        return [("pcie_d2h", fault.device), ("pcie_d2h", fault.peer)]

    # -- windowed faults -------------------------------------------------

    def _open_window(self, fault: FaultSpec, keys: List[Hashable]) -> None:
        for key in keys:
            self._active.setdefault(key, []).append(fault.factor)
            self._apply_rate(key)
        if self.bus is not None:
            self.bus.publish(
                FaultWindowOpened(
                    kind=fault.kind.value,
                    device=fault.device,
                    factor=fault.factor,
                    time=self.engine.now,
                    stream_keys=tuple(keys),
                )
            )

    def _close_window(self, fault: FaultSpec, keys: List[Hashable]) -> None:
        for key in keys:
            factors = self._active.get(key, [])
            if fault.factor in factors:
                factors.remove(fault.factor)
            self._apply_rate(key)
        if self.bus is not None:
            self.bus.publish(
                FaultWindowClosed(
                    kind=fault.kind.value,
                    device=fault.device,
                    factor=fault.factor,
                    time=self.engine.now,
                    stream_keys=tuple(keys),
                )
            )

    def _apply_rate(self, key: Hashable) -> None:
        if key not in self.streams:
            return  # resource never materialized in this run
        rate = 1.0
        for factor in self._active.get(key, ()):
            rate *= factor
        self.engine.set_stream_rate(self.streams.get(key), rate)

    # -- device failure --------------------------------------------------

    def _on_fail(self, fault: FaultSpec) -> None:
        if not self.engine.work_remaining:
            return  # training already finished; nothing to recover
        now = self.engine.now
        if now < self._outage_until:
            # The server is already down restoring; this failure gets
            # its own recovery once the current one completes, so
            # outage windows never overlap.
            self.engine.schedule_callback(
                self._outage_until, lambda: self._on_fail(fault)
            )
            return
        checkpoint = self._last_checkpoint_time()
        lost = max(0.0, now - checkpoint)
        reload_bytes = self.memory.gpu(fault.device).in_use
        reload_seconds = transfer_time(reload_bytes, self.job.server.pcie, lanes=1)
        recovery = fault.restart_latency + reload_seconds + lost
        self._outage_until = now + recovery
        self.engine.stall_all(recovery)
        record = FailureRecord(
            device=fault.device,
            time=now,
            lost_seconds=lost,
            restart_latency=fault.restart_latency,
            reload_bytes=reload_bytes,
            reload_seconds=reload_seconds,
            resume_time=now + recovery,
        )
        self.failures.append(record)
        if self.bus is not None:
            # TraceRecorder (attached iff record_trace) turns this
            # into the same recovery trace event the legacy path wrote.
            self.bus.publish(
                DeviceFailed(
                    device=fault.device,
                    time=now,
                    resume_time=now + recovery,
                    lost_seconds=lost,
                    reload_bytes=reload_bytes,
                    reload_seconds=reload_seconds,
                )
            )
        elif self.record_trace:
            self.trace.record(
                TraceEvent(
                    name=f"recovery.gpu{fault.device}",
                    kind="recovery",
                    device=fault.device,
                    microbatch=-1,
                    start=now,
                    end=now + recovery,
                )
            )

    def _last_checkpoint_time(self) -> float:
        """End of the last minibatch every stage finished optimizing.

        Checkpoints are modelled at minibatch boundaries: minibatch
        ``k`` is durable once all stages completed its optimizer
        step; work past that instant is lost on failure.
        """
        n_stages = self.job.n_stages
        ends: Dict[int, List[float]] = {}
        for event in self.trace.events:
            if event.kind == "opt":
                ends.setdefault(event.microbatch, []).append(event.end)
        checkpoint = 0.0
        for _minibatch, times in ends.items():
            if len(times) >= n_stages:
                checkpoint = max(checkpoint, max(times))
        return checkpoint

    # -- reporting -------------------------------------------------------

    def build_report(self, makespan: float) -> ResilienceReport:
        samples = self.job.samples_per_minibatch * self.job.n_minibatches
        return ResilienceReport(
            schedule=self.schedule,
            makespan=makespan,
            samples=samples,
            failures=list(self.failures),
        )
