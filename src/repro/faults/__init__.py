"""Fault injection and resilience modelling.

Describe timed hardware faults (:mod:`repro.faults.spec`), inject
them into a simulation (:mod:`repro.faults.inject`), and account for
their cost (:mod:`repro.faults.report`).  Entry points::

    from repro.faults import FaultKind, FaultSpec, FaultSchedule, random_schedule

    faults = random_schedule(seed=42, n_devices=8, horizon=30.0)
    result = simulate(job, plan, faults=faults)
    print(result.resilience.summary())
"""

from repro.faults.spec import (
    FaultKind,
    FaultSchedule,
    FaultSpec,
    load_faults,
    random_schedule,
    save_faults,
)
from repro.faults.report import FailureRecord, ResilienceReport
from repro.faults.inject import FaultInjector

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultSchedule",
    "FailureRecord",
    "ResilienceReport",
    "FaultInjector",
    "random_schedule",
    "save_faults",
    "load_faults",
]
