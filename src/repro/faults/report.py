"""Resilience accounting for one faulted simulation run.

The :class:`ResilienceReport` is the fault-injection counterpart of
:class:`~repro.sim.executor.SimulationResult`: where the simulation
result reports steady-state throughput, the resilience report
reports *goodput* — samples per wall-clock second including every
recovery — together with the per-failure recovery timeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.faults.spec import FaultSchedule


@dataclass(frozen=True)
class FailureRecord:
    """One device failure and its checkpoint-restore recovery.

    Recovery time decomposes into the fixed ``restart_latency``, the
    ``reload_seconds`` spent re-loading the device's resident state
    over PCIe, and ``lost_seconds`` of re-executed work since the
    last completed checkpoint (minibatch boundary).
    """

    device: int
    time: float
    lost_seconds: float
    restart_latency: float
    reload_bytes: int
    reload_seconds: float
    resume_time: float

    @property
    def recovery_seconds(self) -> float:
        return self.resume_time - self.time

    def to_dict(self) -> Dict:
        return {
            "device": self.device,
            "time": self.time,
            "lost_seconds": self.lost_seconds,
            "restart_latency": self.restart_latency,
            "reload_bytes": self.reload_bytes,
            "reload_seconds": self.reload_seconds,
            "resume_time": self.resume_time,
        }


@dataclass
class ResilienceReport:
    """Goodput and recovery timeline of one faulted run."""

    schedule: FaultSchedule
    makespan: float
    samples: int
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def total_recovery_seconds(self) -> float:
        return sum(f.recovery_seconds for f in self.failures)

    @property
    def lost_seconds(self) -> float:
        return sum(f.lost_seconds for f in self.failures)

    @property
    def goodput_samples_per_second(self) -> float:
        """Samples per second over the whole run, recoveries included."""
        if self.makespan <= 0:
            return 0.0
        return self.samples / self.makespan

    def recovery_timeline(self) -> List[Tuple[float, float, int]]:
        """Sorted (start, end, device) outage windows."""
        return sorted((f.time, f.resume_time, f.device) for f in self.failures)

    def to_json(self) -> str:
        """Deterministic JSON — identical seeds yield identical bytes."""
        return json.dumps(
            {
                "schedule": json.loads(self.schedule.to_json()),
                "makespan": self.makespan,
                "samples": self.samples,
                "goodput_samples_per_second": self.goodput_samples_per_second,
                "total_recovery_seconds": self.total_recovery_seconds,
                "lost_seconds": self.lost_seconds,
                "failures": [f.to_dict() for f in self.failures],
            },
            sort_keys=True,
        )

    def summary(self) -> str:
        lines = [
            f"faults: {len(self.schedule)} injected, "
            f"{len(self.failures)} device failures",
            f"goodput: {self.goodput_samples_per_second:.2f} samples/s "
            f"over {self.makespan:.2f}s",
            f"recovery: {self.total_recovery_seconds:.2f}s total "
            f"({self.lost_seconds:.2f}s lost work)",
        ]
        for f in self.failures:
            lines.append(
                f"  gpu{f.device} failed at {f.time:.2f}s: "
                f"restart {f.restart_latency:.2f}s + "
                f"reload {f.reload_seconds:.2f}s ({f.reload_bytes} B) + "
                f"redo {f.lost_seconds:.2f}s -> resumed {f.resume_time:.2f}s"
            )
        return "\n".join(lines)
