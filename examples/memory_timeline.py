"""Scenario: visualize pipeline execution and memory evolution.

Recreates the paper's Figure 1 on a 3-worker pipeline: the 1F1B
timeline (forward boxes as microbatch digits, backward as dots) and
the per-worker memory curve showing why early workers accumulate
more — the imbalance MPress's D2D swap exploits.

Run:  python examples/memory_timeline.py
"""

from repro.hardware.device import GPUSpec, HostSpec
from repro.hardware.server import Server
from repro.hardware.topology import dgx2_topology
from repro.job import TrainingJob
from repro.models.config import TransformerConfig
from repro.models.layers import build_model
from repro.sim.executor import simulate
from repro.units import GiB, GBps, TFLOP


def three_worker_server() -> Server:
    gpu = GPUSpec("demo-gpu", 8 * GiB, 10 * TFLOP, 80 * TFLOP, 500 * GBps)
    return Server(
        name="demo-3gpu",
        gpus=[gpu] * 3,
        topology=dgx2_topology(n_gpus=3),
        host=HostSpec(memory_bytes=64 * GiB),
    )


def demo_model():
    config = TransformerConfig(
        name="Demo", n_layers=7, hidden=256, heads=4,
        vocab=1000, seq_len=64, max_positions=128,
    )
    return build_model(config)


def ascii_curve(timeline, width=70, height=8) -> str:
    """Render one device's memory timeline as a small ASCII plot."""
    if not timeline:
        return "(no samples)"
    t_max = max(t for t, _ in timeline) or 1.0
    m_max = max(m for _, m in timeline) or 1
    grid = [[" "] * width for _ in range(height)]
    for t, m in timeline:
        col = min(width - 1, int(t / t_max * (width - 1)))
        row = min(height - 1, int(m / m_max * (height - 1)))
        grid[height - 1 - row][col] = "*"
    return "\n".join("|" + "".join(row) for row in grid)


def main() -> None:
    for system, mpm, n_mb in (("pipedream", 1, 9), ("dapple", 6, 2)):
        job = TrainingJob(
            model=demo_model(),
            server=three_worker_server(),
            system=system,
            microbatch_size=2,
            microbatches_per_minibatch=mpm,
            n_minibatches=n_mb,
            precision="fp16",
            mfu=0.5,
        )
        result = simulate(job, strict=False)
        print(f"=== {system} (Figure 1{'a' if system == 'pipedream' else 'b'}) ===")
        print(result.trace.render_timeline(width=72))
        print()
        for device in range(3):
            gpu = result.memory.gpu(device)
            print(f"worker {device + 1} memory over time "
                  f"(peak {gpu.peak / 2**20:.0f} MiB):")
            print(ascii_curve(gpu.timeline))
        print()


if __name__ == "__main__":
    main()
