"""Quickstart: train a Bert that does not fit, with MPress.

Builds the paper's medium scenario — Bert-0.64B on a DGX-1-class
server, where plain PipeDream runs out of GPU memory — and shows
MPress planning its way to a successful run.

Run:  python examples/quickstart.py
"""

from repro import bert_variant, dgx1_server, pipedream_job, run_system
from repro.units import fmt_bytes


def main() -> None:
    server = dgx1_server()
    model = bert_variant(0.64)
    job = pipedream_job(model, server)
    print(f"model:  {model.config.describe()}")
    print(f"server: {server.name}, {server.n_gpus}x {fmt_bytes(server.gpu_memory)} GPUs")
    print()

    # Without memory optimization the job dies (the paper's Fig. 7).
    plain = run_system(job, "none")
    print(f"PipeDream alone: {'ok' if plain.ok else 'OUT OF MEMORY'}")
    if not plain.ok:
        print(f"  -> {plain.simulation.oom}")
    print()

    # MPress: profile, plan (D2D swap + GPU-CPU swap + recomputation),
    # then run under real memory constraints.
    mpress = run_system(job, "mpress")
    print(f"MPress: {'ok' if mpress.ok else 'failed'}")
    print(f"  device map:       {mpress.plan.device_map}")
    print(f"  throughput:       {mpress.tflops:.1f} TFLOPS "
          f"({mpress.samples_per_second:.1f} samples/s)")
    peaks = mpress.simulation.peak_memory_per_gpu
    print(f"  per-GPU peaks:    {' '.join(fmt_bytes(p) for p in peaks)}")
    print()
    print("memory-saving plan:")
    print(mpress.plan.summary())


if __name__ == "__main__":
    main()
