"""Scenario: plan MPress on your own hardware description.

The library is not tied to the paper's two DGX machines: describe any
server — GPUs, NVLink topology, host memory, NVMe — and the planner
adapts.  This example builds a 4-GPU workstation with 24 GiB cards
and an asymmetric NVLink bridge layout, then asks MPress how large a
Bert it can train and at what throughput.

Run:  python examples/custom_hardware.py
"""

from repro.core.mpress import run_system
from repro.hardware.device import GPUSpec, HostSpec, NVMeSpec
from repro.hardware.links import NVLINK2
from repro.hardware.server import Server
from repro.hardware.topology import Topology
from repro.job import pipedream_job
from repro.models import bert_variant
from repro.units import GiB, GBps, TFLOP, fmt_bytes


def workstation() -> Server:
    """4x 24-GiB GPUs; NVLink bridges pair 0-1 and 2-3 with a thin
    cross-link, the rest over PCIe."""
    gpu = GPUSpec(
        name="ws-24GB",
        memory_bytes=24 * GiB,
        peak_fp32=20 * TFLOP,
        peak_fp16=160 * TFLOP,
        hbm_bandwidth=900 * GBps,
    )
    topology = Topology(
        n_gpus=4,
        kind="direct",
        nvlink=NVLINK2,
        adjacency={
            frozenset((0, 1)): 2,
            frozenset((2, 3)): 2,
            frozenset((1, 2)): 1,
            frozenset((0, 3)): 1,
        },
    )
    return Server(
        name="workstation-4gpu",
        gpus=[gpu] * 4,
        topology=topology,
        host=HostSpec(memory_bytes=256 * GiB, vcpus=32),
        nvme=NVMeSpec(capacity_bytes=2 * 1024 * GiB,
                      read_bandwidth=5 * GBps, write_bandwidth=3 * GBps),
    )


def main() -> None:
    server = workstation()
    print(f"server: {server.name}, {server.n_gpus}x {fmt_bytes(server.gpu_memory)}")
    for billions in (0.35, 0.64, 1.67):
        job = pipedream_job(bert_variant(billions), server, microbatch_size=8)
        plain = run_system(job, "none")
        mpress = run_system(job, "mpress")
        plain_cell = f"{plain.tflops:.0f} TF" if plain.ok else "OOM"
        mpress_cell = f"{mpress.tflops:.0f} TF" if mpress.ok else "OOM"
        print(f"Bert-{billions}B: plain={plain_cell:>6}  mpress={mpress_cell:>6}  "
              f"map={mpress.plan.device_map if mpress.ok else '-'}")


if __name__ == "__main__":
    main()
