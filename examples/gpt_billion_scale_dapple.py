"""Scenario: a 20B-parameter GPT on one 8-GPU server.

Walks through MPress end to end on the paper's hardest DGX-1 case —
GPT-20.4B through DAPPLE, where per-stage memory demand (112 GB)
exceeds GPU capacity (32 GB) by 3.5x:

1. profile the job and inspect the per-stage memory demands,
2. build the memory-saving plan (device mapping + technique mix),
3. execute under strict memory constraints,
4. compare against the ZeRO data-parallel baselines.

Run:  python examples/gpt_billion_scale_dapple.py
"""

from repro import dapple_job, dgx1_server, gpt_variant, run_zero
from repro.analysis.reporting import format_table
from repro.core.mpress import MPress
from repro.core.profiler import Profiler
from repro.units import fmt_bytes


def main() -> None:
    server = dgx1_server()
    model = gpt_variant(20.4)
    job = dapple_job(model, server)
    print(f"model:  {model.config.describe()}")
    print(f"server: {server.name} ({fmt_bytes(server.gpu_memory)} per GPU)")
    print()

    # Step 1: profile (MPress Static, Fig. 5 steps 1-2).
    profile = Profiler(job).run()
    print("per-stage memory demand (uncompacted):")
    for stage, peak in enumerate(profile.stage_peaks):
        bar = "#" * int(40 * peak / max(profile.stage_peaks))
        print(f"  stage {stage}: {fmt_bytes(peak):>10}  {bar}")
    print(f"  total {fmt_bytes(profile.total_demand())} vs "
          f"{fmt_bytes(server.total_gpu_memory)} of GPU memory")
    print()

    # Steps 2-3: plan and run.
    mpress = MPress(job)
    result = mpress.run()
    report = mpress.planner_report
    print(f"plan: device map {result.plan.device_map}, "
          f"{len(result.plan.entries)} tensor classes reduced, "
          f"{report.refine_iterations} refinement iterations")
    print(result.plan.summary())
    print()
    print(f"MPress: {'ok' if result.ok else 'failed'} — "
          f"{result.tflops:.0f} TFLOPS, "
          f"{result.samples_per_second:.1f} samples/s")
    print()

    # Step 4: the ZeRO baselines on identical hardware.
    samples = job.samples_per_minibatch
    offload = run_zero(model, server, "offload", samples)
    infinity = run_zero(model, server, "infinity", samples)
    rows = [
        ["MPress", f"{result.tflops:.0f}", "1.00"],
        ["ZeRO-Infinity", f"{infinity.tflops:.0f}",
         f"{infinity.tflops / result.tflops:.2f}"],
        ["ZeRO-Offload", f"{offload.tflops:.0f}",
         f"{offload.tflops / result.tflops:.2f}"],
    ]
    print(format_table(["system", "TFLOPS", "vs MPress"], rows,
                       title="GPT-20.4B on DGX-1 (cf. paper Fig. 8a)"))


if __name__ == "__main__":
    main()
