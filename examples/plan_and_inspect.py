"""Scenario: plan once offline, persist, replay, and inspect.

MPress Static runs once; real training reuses its plan for millions
of iterations (the paper's Figure 5 split). This example builds a
plan, saves it to JSON, reloads it into a fresh strict run, verifies
the execution with the audit module, and exports a Chrome trace for
visual inspection.

Run:  python examples/plan_and_inspect.py
"""

import os
import tempfile

from repro import bert_variant, dgx1_server, pipedream_job, simulate
from repro.core.mpress import MPress
from repro.core.serialization import load_plan, save_plan
from repro.sim.audit import audit_simulation
from repro.sim.chrome_trace import save_chrome_trace


def main() -> None:
    job = pipedream_job(bert_variant(0.64), dgx1_server())

    # Offline: profile, plan, persist.
    mpress = MPress(job)
    plan = mpress.build_plan()
    workdir = tempfile.mkdtemp(prefix="mpress-")
    plan_path = os.path.join(workdir, "plan.json")
    save_plan(plan, plan_path)
    print(f"plan built ({len(plan.entries)} entries) and saved to {plan_path}")
    print(plan.summary())
    print()

    # Online: reload and execute under strict memory limits.
    reloaded = load_plan(plan_path)
    result = simulate(job, reloaded, strict=True)
    print(f"replayed run: {'ok' if result.ok else 'OOM'} — "
          f"{result.tflops:.1f} TFLOPS")

    # Verify the execution's invariants.
    report = audit_simulation(result)
    print(f"audit: {'clean' if report.ok else report.violations}")

    # Export for chrome://tracing.
    trace_path = os.path.join(workdir, "trace.json")
    save_chrome_trace(result.trace, trace_path)
    print(f"chrome trace at {trace_path} "
          f"({len(result.trace.events)} events)")


if __name__ == "__main__":
    main()
