"""Scenario: how far can each memory-saving technique scale Bert?

Sweeps the paper's Bert variants (0.35B - 6.2B parameters) on a
DGX-1-class server through PipeDream with each memory-saving system,
reproducing the shape of the paper's Figure 7: recomputation dies at
the model-state wall, GPU-CPU swap survives but crawls, and MPress
is the only fast system at every size.

Run:  python examples/bert_scaling_pipedream.py
"""

from repro import bert_variant, dgx1_server, pipedream_job, run_system
from repro.analysis.reporting import format_table

SYSTEMS = ("none", "recomputation", "gpu-cpu-swap", "mpress")
SIZES = (0.35, 0.64, 1.67, 4.0, 6.2)


def main() -> None:
    server = dgx1_server()
    rows = []
    for billions in SIZES:
        job = pipedream_job(bert_variant(billions), server)
        cells = []
        for system in SYSTEMS:
            result = run_system(job, system)
            cells.append(f"{result.tflops:.0f} TF" if result.ok else "OOM")
        rows.append([f"Bert-{billions}B", *cells])
        print(f"finished Bert-{billions}B")
    print()
    print(format_table(
        ["model", *SYSTEMS],
        rows,
        title="Bert + PipeDream on DGX-1 (aggregate TFLOPS; cf. paper Fig. 7)",
    ))


if __name__ == "__main__":
    main()
